//! The dataflow-graph intermediate representation.
//!
//! Nodes are tensor operators, edges carry tensors between them — the same
//! representation TASO and X-RLflow operate on. The graph owns shape
//! inference (performed when a node is added) so that every edge always has
//! a concrete [`TensorShape`], which downstream components (cost model,
//! rewrite matcher, GNN featuriser) rely on.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};

use crate::infer::infer_output_shapes;
use crate::op::{OpAttributes, OpKind};
use crate::shape::TensorShape;

/// Identifier of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to one output tensor of a node (node id + output port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorRef {
    /// The producing node.
    pub node: NodeId,
    /// Which of the producing node's outputs this refers to.
    pub port: usize,
}

impl TensorRef {
    /// A reference to output port 0 of a node.
    pub fn new(node: NodeId) -> Self {
        Self { node, port: 0 }
    }

    /// A reference to a specific output port of a node.
    pub fn with_port(node: NodeId, port: usize) -> Self {
        Self { node, port }
    }
}

impl From<NodeId> for TensorRef {
    fn from(node: NodeId) -> Self {
        TensorRef::new(node)
    }
}

/// A single operator node in the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operator kind.
    pub op: OpKind,
    /// The operator attributes.
    pub attrs: OpAttributes,
    /// The input tensors, in operator-defined order.
    pub inputs: Vec<TensorRef>,
    /// The shapes of this node's output tensors.
    pub outputs: Vec<TensorShape>,
    /// Optional human-readable name (used by the model zoo).
    pub name: Option<String>,
}

/// Errors produced while building or transforming graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The operator received the wrong number of inputs.
    Arity {
        /// The operator kind.
        op: OpKind,
        /// Minimum number of inputs accepted.
        expected_min: usize,
        /// Maximum number of inputs accepted.
        expected_max: usize,
        /// Number of inputs actually supplied.
        got: usize,
    },
    /// The input shapes are incompatible with the operator.
    Shape {
        /// The operator kind.
        op: OpKind,
        /// Explanation of the mismatch.
        message: String,
    },
    /// A referenced node does not exist (or has been removed).
    InvalidNode(NodeId),
    /// A referenced output port does not exist on the producing node.
    InvalidPort(TensorRef),
    /// The node cannot be removed because other nodes still consume it.
    NodeInUse(NodeId),
    /// The graph contains a cycle.
    Cycle,
    /// A patch referenced an added node or output port that does not exist.
    InvalidPatchRef {
        /// Index of the added node within the patch.
        node: usize,
        /// Output port referenced.
        port: usize,
    },
    /// A serialised graph document is malformed or violates the interchange
    /// schema (bad JSON syntax, wrong format marker, unsupported version,
    /// missing or ill-typed keys).
    Parse(String),
    /// A serialised graph named an operator kind this build does not know.
    UnknownOp(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Arity { op, expected_min, expected_max, got } => {
                if expected_max == &usize::MAX {
                    write!(f, "{op} expects at least {expected_min} inputs, got {got}")
                } else {
                    write!(f, "{op} expects {expected_min}..={expected_max} inputs, got {got}")
                }
            }
            GraphError::Shape { op, message } => write!(f, "shape error in {op}: {message}"),
            GraphError::InvalidNode(id) => write!(f, "invalid node reference {:?}", id),
            GraphError::InvalidPort(r) => write!(f, "invalid output port {} of {:?}", r.port, r.node),
            GraphError::NodeInUse(id) => write!(f, "node {:?} still has consumers", id),
            GraphError::Cycle => write!(f, "graph contains a cycle"),
            GraphError::InvalidPatchRef { node, port } => {
                write!(f, "invalid patch reference: added node {node}, port {port}")
            }
            GraphError::Parse(message) => write!(f, "malformed graph document: {message}"),
            GraphError::UnknownOp(name) => write!(f, "unknown operator {name:?}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A tensor dataflow graph (directed acyclic graph of operators).
///
/// # Examples
///
/// Building the dense layer `y = relu(w·x + b)` from the paper's Figure 1:
///
/// ```
/// use xrlflow_graph::{Graph, OpAttributes, OpKind, TensorShape};
///
/// let mut g = Graph::new();
/// let x = g.add_input(TensorShape::new(vec![1, 64]));
/// let w = g.add_weight(TensorShape::new(vec![64, 32]));
/// let b = g.add_weight(TensorShape::new(vec![1, 32]));
/// let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
/// let add = g.add_node(OpKind::Add, OpAttributes::default(), vec![mm.into(), b.into()]).unwrap();
/// let y = g.add_node(OpKind::Relu, OpAttributes::default(), vec![add.into()]).unwrap();
/// g.mark_output(y.into());
/// assert_eq!(g.num_nodes(), 6);
/// assert!(g.validate().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Option<Node>>,
    outputs: Vec<TensorRef>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a graph input (activation source) with the given shape.
    pub fn add_input(&mut self, shape: TensorShape) -> NodeId {
        self.push_source(OpKind::Input, shape)
    }

    /// Adds a trainable weight source with the given shape.
    pub fn add_weight(&mut self, shape: TensorShape) -> NodeId {
        self.push_source(OpKind::Weight, shape)
    }

    /// Adds a constant source with the given shape.
    pub fn add_constant(&mut self, shape: TensorShape) -> NodeId {
        self.push_source(OpKind::Constant, shape)
    }

    fn push_source(&mut self, op: OpKind, shape: TensorShape) -> NodeId {
        self.nodes.push(Some(Node {
            op,
            attrs: OpAttributes::default(),
            inputs: Vec::new(),
            outputs: vec![shape],
            name: None,
        }));
        NodeId((self.nodes.len() - 1) as u32)
    }

    /// Adds an operator node, running shape inference on its inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if any input reference is invalid or shape inference
    /// fails.
    pub fn add_node(
        &mut self,
        op: OpKind,
        attrs: OpAttributes,
        inputs: Vec<TensorRef>,
    ) -> Result<NodeId, GraphError> {
        let mut in_shapes = Vec::with_capacity(inputs.len());
        for r in &inputs {
            in_shapes.push(self.tensor_shape(*r)?.clone());
        }
        let outputs = infer_output_shapes(op, &attrs, &in_shapes)?;
        self.nodes.push(Some(Node { op, attrs, inputs, outputs, name: None }));
        Ok(NodeId((self.nodes.len() - 1) as u32))
    }

    /// Adds an operator node with a human-readable name.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::add_node`].
    pub fn add_named_node(
        &mut self,
        name: &str,
        op: OpKind,
        attrs: OpAttributes,
        inputs: Vec<TensorRef>,
    ) -> Result<NodeId, GraphError> {
        let id = self.add_node(op, attrs, inputs)?;
        if let Some(Some(n)) = self.nodes.get_mut(id.index()) {
            n.name = Some(name.to_string());
        }
        Ok(id)
    }

    /// Marks a tensor as a graph output.
    pub fn mark_output(&mut self, r: TensorRef) {
        if !self.outputs.contains(&r) {
            self.outputs.push(r);
        }
    }

    /// Marks a tensor as a graph output after checking that it resolves —
    /// the fallible variant for references from untrusted input.
    ///
    /// # Errors
    ///
    /// Returns an error when the node or port does not exist.
    pub fn try_mark_output(&mut self, r: TensorRef) -> Result<(), GraphError> {
        self.tensor_shape(r)?;
        self.mark_output(r);
        Ok(())
    }

    /// Assembles a graph directly from node storage and output references —
    /// used by the JSON importer, which validates the result afterwards.
    pub(crate) fn from_raw_parts(nodes: Vec<Option<Node>>, outputs: Vec<TensorRef>) -> Self {
        Self { nodes, outputs }
    }

    /// The graph outputs.
    pub fn outputs(&self) -> &[TensorRef] {
        &self.outputs
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidNode`] if the node does not exist.
    pub fn node(&self, id: NodeId) -> Result<&Node, GraphError> {
        self.nodes.get(id.index()).and_then(|n| n.as_ref()).ok_or(GraphError::InvalidNode(id))
    }

    /// Returns the shape of a tensor reference.
    ///
    /// # Errors
    ///
    /// Returns an error when the node or port is invalid.
    pub fn tensor_shape(&self, r: TensorRef) -> Result<&TensorShape, GraphError> {
        let node = self.node(r.node)?;
        node.outputs.get(r.port).ok_or(GraphError::InvalidPort(r))
    }

    /// Iterates over `(NodeId, &Node)` pairs of live nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().filter_map(|(i, n)| n.as_ref().map(|n| (NodeId(i as u32), n)))
    }

    /// Number of live nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Number of edges (total input references of live nodes).
    pub fn num_edges(&self) -> usize {
        self.iter().map(|(_, n)| n.inputs.len()).sum()
    }

    /// Number of live nodes of a given operator kind.
    pub fn count_op(&self, op: OpKind) -> usize {
        self.iter().filter(|(_, n)| n.op == op).count()
    }

    /// Returns `(consumer, input_slot)` pairs for every use of the given node.
    pub fn consumers(&self, id: NodeId) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        for (cid, node) in self.iter() {
            for (slot, r) in node.inputs.iter().enumerate() {
                if r.node == id {
                    out.push((cid, slot));
                }
            }
        }
        out
    }

    /// Returns a topological ordering of live nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] if the graph is cyclic.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let mut in_degree: HashMap<NodeId, usize> = HashMap::new();
        let mut dependents: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (id, node) in self.iter() {
            let unique_deps: HashSet<NodeId> = node.inputs.iter().map(|r| r.node).collect();
            in_degree.insert(id, unique_deps.len());
            for dep in unique_deps {
                dependents.entry(dep).or_default().push(id);
            }
        }
        let mut queue: VecDeque<NodeId> =
            in_degree.iter().filter(|(_, &d)| d == 0).map(|(&id, _)| id).collect();
        let mut sorted: Vec<NodeId> = Vec::with_capacity(in_degree.len());
        let mut queue_vec: Vec<NodeId> = queue.drain(..).collect();
        queue_vec.sort();
        let mut queue: VecDeque<NodeId> = queue_vec.into();
        while let Some(id) = queue.pop_front() {
            sorted.push(id);
            if let Some(deps) = dependents.get(&id) {
                for &d in deps {
                    let e = in_degree.get_mut(&d).expect("dependent must have an in-degree");
                    *e -= 1;
                    if *e == 0 {
                        queue.push_back(d);
                    }
                }
            }
        }
        if sorted.len() != self.num_nodes() {
            return Err(GraphError::Cycle);
        }
        Ok(sorted)
    }

    /// Validates the whole graph: all references resolve, shapes agree with
    /// shape inference, and the graph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first structural or shape error found.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (_, node) in self.iter() {
            if node.op.is_source() {
                continue;
            }
            let mut in_shapes = Vec::with_capacity(node.inputs.len());
            for r in &node.inputs {
                in_shapes.push(self.tensor_shape(*r)?.clone());
            }
            let inferred = infer_output_shapes(node.op, &node.attrs, &in_shapes)?;
            if inferred != node.outputs {
                return Err(GraphError::Shape {
                    op: node.op,
                    message: format!(
                        "stored outputs {:?} disagree with inferred {:?}",
                        node.outputs, inferred
                    ),
                });
            }
        }
        for r in &self.outputs {
            self.tensor_shape(*r)?;
        }
        self.topo_order()?;
        Ok(())
    }

    /// Rewires every consumer of `from` (and graph outputs) to read `to`
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns an error if `to` is invalid or the shapes of `from` and `to`
    /// differ (rewiring would corrupt downstream shapes).
    pub fn replace_all_uses(&mut self, from: TensorRef, to: TensorRef) -> Result<(), GraphError> {
        let from_shape = self.tensor_shape(from)?;
        let to_shape = self.tensor_shape(to)?;
        if from_shape != to_shape {
            let message = format!("cannot replace tensor of shape {from_shape} with {to_shape}");
            return Err(GraphError::Shape { op: self.node(to.node)?.op, message });
        }
        for node in self.nodes.iter_mut().flatten() {
            for r in &mut node.inputs {
                if *r == from {
                    *r = to;
                }
            }
        }
        for r in &mut self.outputs {
            if *r == from {
                *r = to;
            }
        }
        Ok(())
    }

    /// Removes a node that has no consumers and is not a graph output.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeInUse`] if the node still has consumers or
    /// is a graph output, [`GraphError::InvalidNode`] if it does not exist.
    pub fn remove_node(&mut self, id: NodeId) -> Result<(), GraphError> {
        self.node(id)?;
        if !self.consumers(id).is_empty() || self.outputs.iter().any(|r| r.node == id) {
            return Err(GraphError::NodeInUse(id));
        }
        self.nodes[id.index()] = None;
        Ok(())
    }

    /// Applies a [`crate::GraphPatch`] to this graph in place: splices the
    /// patch's added nodes (reusing their pre-inferred output shapes — no
    /// shape inference is re-run), performs the recorded consumer rewires in
    /// order, then eliminates nodes the rewires made unreachable.
    ///
    /// The patch must have been built (via [`crate::PatchBuilder`]) against a
    /// graph structurally identical to `self`.
    ///
    /// # Errors
    ///
    /// Returns an error when a patch reference does not resolve against this
    /// graph or a rewire is shape-incompatible — both indicate the patch was
    /// built against a different base graph. **On error the graph is left
    /// partially modified** (spliced nodes and already-applied rewires are
    /// not rolled back) and must be discarded; use [`Graph::apply_patch`]
    /// when the original must survive a failed application.
    pub fn apply_patch_in_place(&mut self, patch: &crate::GraphPatch) -> Result<(), GraphError> {
        let mut new_ids: Vec<NodeId> = Vec::with_capacity(patch.added.len());
        for pn in &patch.added {
            let mut inputs = Vec::with_capacity(pn.inputs.len());
            for r in &pn.inputs {
                let resolved = r.resolve(&new_ids)?;
                // The producing tensor must exist in this graph.
                self.tensor_shape(resolved)?;
                inputs.push(resolved);
            }
            self.nodes.push(Some(Node {
                op: pn.op,
                attrs: pn.attrs.clone(),
                inputs,
                outputs: pn.outputs.clone(),
                name: None,
            }));
            new_ids.push(NodeId((self.nodes.len() - 1) as u32));
        }
        for (from, to) in &patch.rewires {
            let to = to.resolve(&new_ids)?;
            self.replace_all_uses(*from, to)?;
        }
        self.eliminate_dead_nodes();
        Ok(())
    }

    /// Applies a [`crate::GraphPatch`], returning the transformed graph and
    /// leaving `self` untouched. See [`Graph::apply_patch_in_place`].
    ///
    /// # Errors
    ///
    /// Same as [`Graph::apply_patch_in_place`].
    pub fn apply_patch(&self, patch: &crate::GraphPatch) -> Result<Graph, GraphError> {
        let mut out = self.clone();
        out.apply_patch_in_place(patch)?;
        Ok(out)
    }

    /// Removes every node that is not reachable (backwards) from a graph
    /// output. Returns the number of nodes removed.
    pub fn eliminate_dead_nodes(&mut self) -> usize {
        let mut live: HashSet<NodeId> = HashSet::new();
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|r| r.node).collect();
        while let Some(id) = stack.pop() {
            if !live.insert(id) {
                continue;
            }
            if let Ok(node) = self.node(id) {
                for r in &node.inputs {
                    stack.push(r.node);
                }
            }
        }
        let mut removed = 0;
        for i in 0..self.nodes.len() {
            if self.nodes[i].is_some() && !live.contains(&NodeId(i as u32)) {
                self.nodes[i] = None;
                removed += 1;
            }
        }
        removed
    }

    /// Returns the set of nodes whose outputs do not depend on any `Input`
    /// node — these can be pre-computed before inference (constant folding),
    /// which the end-to-end latency simulator exploits but the per-operator
    /// cost model does not (reproducing the paper's ViT observation).
    pub fn foldable_nodes(&self) -> HashSet<NodeId> {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return HashSet::new(),
        };
        let mut foldable: HashSet<NodeId> = HashSet::new();
        for id in order {
            let node = match self.node(id) {
                Ok(n) => n,
                Err(_) => continue,
            };
            let is_foldable = match node.op {
                OpKind::Input => false,
                OpKind::Weight | OpKind::Constant => true,
                _ => node.inputs.iter().all(|r| foldable.contains(&r.node)),
            };
            if is_foldable {
                foldable.insert(id);
            }
        }
        foldable
    }

    /// A canonical structural hash of the graph: two graphs that are equal
    /// up to node-id renumbering hash to the same value. Used to deduplicate
    /// rewrite candidates.
    pub fn canonical_hash(&self) -> u64 {
        let order = match self.topo_order() {
            Ok(o) => o,
            Err(_) => return 0,
        };
        // Renumber nodes in topological order.
        let renumber: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let mut hasher = DefaultHasher::new();
        for id in &order {
            let node = self.node(*id).expect("topo order only contains live nodes");
            node.op.hash(&mut hasher);
            node.attrs.hash(&mut hasher);
            for r in &node.inputs {
                renumber[&r.node].hash(&mut hasher);
                r.port.hash(&mut hasher);
            }
            for s in &node.outputs {
                s.hash(&mut hasher);
            }
        }
        let mut outs: Vec<(usize, usize)> =
            self.outputs.iter().map(|r| (renumber[&r.node], r.port)).collect();
        outs.sort_unstable();
        outs.hash(&mut hasher);
        hasher.finish()
    }

    /// Compacts node storage, renumbering all node ids. Returns the mapping
    /// from old to new ids.
    pub fn compact(&mut self) -> HashMap<NodeId, NodeId> {
        let mut mapping = HashMap::new();
        let mut new_nodes = Vec::with_capacity(self.num_nodes());
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(n) = node {
                mapping.insert(NodeId(i as u32), NodeId(new_nodes.len() as u32));
                new_nodes.push(Some(n.clone()));
            }
        }
        for node in new_nodes.iter_mut().flatten() {
            for r in &mut node.inputs {
                r.node = mapping[&r.node];
            }
        }
        for r in &mut self.outputs {
            r.node = mapping[&r.node];
        }
        self.nodes = new_nodes;
        mapping
    }

    /// A human-readable multi-line summary of the graph (topological order).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if let Ok(order) = self.topo_order() {
            for id in order {
                let n = self.node(id).expect("live node");
                let inputs: Vec<String> =
                    n.inputs.iter().map(|r| format!("%{}:{}", r.node.0, r.port)).collect();
                let shapes: Vec<String> = n.outputs.iter().map(|s| s.to_string()).collect();
                out.push_str(&format!(
                    "%{} = {}({}) -> {}\n",
                    id.0,
                    n.op,
                    inputs.join(", "),
                    shapes.join(", ")
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Padding;

    fn shape(d: &[usize]) -> TensorShape {
        TensorShape::new(d.to_vec())
    }

    fn small_mlp() -> (Graph, NodeId) {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 64]));
        let w1 = g.add_weight(shape(&[64, 128]));
        let w2 = g.add_weight(shape(&[128, 10]));
        let h = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w1.into()]).unwrap();
        let r = g.add_node(OpKind::Relu, OpAttributes::default(), vec![h.into()]).unwrap();
        let y = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![r.into(), w2.into()]).unwrap();
        g.mark_output(y.into());
        (g, y)
    }

    #[test]
    fn build_and_validate_mlp() {
        let (g, y) = small_mlp();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 5);
        assert!(g.validate().is_ok());
        assert_eq!(g.tensor_shape(y.into()).unwrap().dims(), &[1, 10]);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let (g, _) = small_mlp();
        let order = g.topo_order().unwrap();
        let pos: HashMap<NodeId, usize> = order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for (id, node) in g.iter() {
            for r in &node.inputs {
                assert!(pos[&r.node] < pos[&id], "input must precede consumer");
            }
        }
    }

    #[test]
    fn consumers_found() {
        let (g, _) = small_mlp();
        let x = NodeId(0);
        let consumers = g.consumers(x);
        assert_eq!(consumers.len(), 1);
        assert_eq!(g.node(consumers[0].0).unwrap().op, OpKind::MatMul);
    }

    #[test]
    fn replace_uses_and_dead_code_elimination() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8]));
        let id1 = g.add_node(OpKind::Identity, OpAttributes::default(), vec![x.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![id1.into()]).unwrap();
        g.mark_output(relu.into());

        // Bypass the Identity node.
        g.replace_all_uses(id1.into(), x.into()).unwrap();
        assert_eq!(g.consumers(id1).len(), 0);
        let removed = g.eliminate_dead_nodes();
        assert_eq!(removed, 1);
        assert_eq!(g.num_nodes(), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn replace_uses_rejects_shape_mismatch() {
        let mut g = Graph::new();
        let a = g.add_input(shape(&[1, 8]));
        let b = g.add_input(shape(&[1, 16]));
        let r = g.add_node(OpKind::Relu, OpAttributes::default(), vec![a.into()]).unwrap();
        g.mark_output(r.into());
        assert!(g.replace_all_uses(a.into(), b.into()).is_err());
    }

    #[test]
    fn remove_node_guards() {
        let (mut g, y) = small_mlp();
        // Output node cannot be removed.
        assert!(matches!(g.remove_node(y), Err(GraphError::NodeInUse(_))));
        // A node with consumers cannot be removed.
        assert!(matches!(g.remove_node(NodeId(0)), Err(GraphError::NodeInUse(_))));
        // Unknown node.
        assert!(matches!(g.remove_node(NodeId(99)), Err(GraphError::InvalidNode(_))));
    }

    #[test]
    fn canonical_hash_invariant_to_insertion_order() {
        let (g1, _) = small_mlp();
        // Build the same network with sources created in a different order.
        let mut g2 = Graph::new();
        let w2 = g2.add_weight(shape(&[128, 10]));
        let w1 = g2.add_weight(shape(&[64, 128]));
        let x = g2.add_input(shape(&[1, 64]));
        let h = g2.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w1.into()]).unwrap();
        let r = g2.add_node(OpKind::Relu, OpAttributes::default(), vec![h.into()]).unwrap();
        let y = g2.add_node(OpKind::MatMul, OpAttributes::default(), vec![r.into(), w2.into()]).unwrap();
        g2.mark_output(y.into());
        // Hashes may legitimately differ here because the topological order
        // of sources differs; compacting both and comparing the structural
        // dump is the stable check.
        assert_eq!(g1.num_nodes(), g2.num_nodes());
        assert_eq!(g1.num_edges(), g2.num_edges());
        // A graph is always equal to its own clone.
        assert_eq!(g1.canonical_hash(), g1.clone().canonical_hash());
    }

    #[test]
    fn canonical_hash_differs_for_different_graphs() {
        let (g1, _) = small_mlp();
        let mut g2 = g1.clone();
        let last = g2.outputs()[0];
        let relu = g2.add_node(OpKind::Relu, OpAttributes::default(), vec![last]).unwrap();
        g2.outputs.clear();
        g2.mark_output(relu.into());
        assert_ne!(g1.canonical_hash(), g2.canonical_hash());
    }

    #[test]
    fn foldable_nodes_exclude_input_dependent() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 4]));
        let w = g.add_weight(shape(&[4, 4]));
        let w2 = g.add_weight(shape(&[4, 4]));
        // w * w2 is foldable, x * w is not.
        let fold = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![w.into(), w2.into()]).unwrap();
        let live = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), fold.into()]).unwrap();
        g.mark_output(live.into());
        let foldable = g.foldable_nodes();
        assert!(foldable.contains(&fold));
        assert!(foldable.contains(&w));
        assert!(!foldable.contains(&live));
        assert!(!foldable.contains(&x));
    }

    #[test]
    fn compact_renumbers_and_preserves_structure() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8]));
        let dead = g.add_input(shape(&[1, 8]));
        let r = g.add_node(OpKind::Relu, OpAttributes::default(), vec![x.into()]).unwrap();
        g.mark_output(r.into());
        let _ = dead;
        g.eliminate_dead_nodes();
        let hash_before = g.canonical_hash();
        let mapping = g.compact();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(mapping.len(), 2);
        assert!(g.validate().is_ok());
        assert_eq!(g.canonical_hash(), hash_before);
    }

    #[test]
    fn conv_graph_with_pooling_validates() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 3, 32, 32]));
        let w = g.add_weight(shape(&[16, 3, 3, 3]));
        let conv = g
            .add_node(
                OpKind::Conv2d,
                OpAttributes::conv2d([3, 3], [1, 1], Padding::Same, 1),
                vec![x.into(), w.into()],
            )
            .unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![conv.into()]).unwrap();
        let pool = g
            .add_node(
                OpKind::MaxPool2d,
                OpAttributes::pool([2, 2], [2, 2], Padding::Valid),
                vec![relu.into()],
            )
            .unwrap();
        g.mark_output(pool.into());
        assert!(g.validate().is_ok());
        assert_eq!(g.tensor_shape(pool.into()).unwrap().dims(), &[1, 16, 16, 16]);
    }

    #[test]
    fn split_has_multiple_ports() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8, 4, 4]));
        let split = g.add_node(OpKind::Split, OpAttributes::split(1, 2), vec![x.into()]).unwrap();
        let a =
            g.add_node(OpKind::Relu, OpAttributes::default(), vec![TensorRef::with_port(split, 0)]).unwrap();
        let b =
            g.add_node(OpKind::Relu, OpAttributes::default(), vec![TensorRef::with_port(split, 1)]).unwrap();
        g.mark_output(a.into());
        g.mark_output(b.into());
        assert!(g.validate().is_ok());
        assert_eq!(g.tensor_shape(TensorRef::with_port(split, 1)).unwrap().dims(), &[1, 4, 4, 4]);
        // Port 2 does not exist.
        assert!(g.tensor_shape(TensorRef::with_port(split, 2)).is_err());
    }

    #[test]
    fn dump_contains_ops() {
        let (g, _) = small_mlp();
        let dump = g.dump();
        assert!(dump.contains("MatMul"));
        assert!(dump.contains("Relu"));
    }

    #[test]
    fn named_nodes() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 4]));
        let id =
            g.add_named_node("layer0.relu", OpKind::Relu, OpAttributes::default(), vec![x.into()]).unwrap();
        assert_eq!(g.node(id).unwrap().name.as_deref(), Some("layer0.relu"));
    }
}
