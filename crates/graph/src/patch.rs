//! Delta-based graph rewrites: [`GraphPatch`] and [`PatchBuilder`].
//!
//! A rewrite of a large graph only ever touches a handful of nodes, yet the
//! original candidate pipeline materialised a full [`Graph`] clone per
//! candidate. A [`GraphPatch`] instead records the *delta* — nodes added and
//! consumer rewires — against a fixed base graph; the full graph is only
//! materialised (via [`Graph::apply_patch`]) for the candidates a search
//! strategy actually commits to or inspects.
//!
//! Patches are constructed through [`PatchBuilder`], which runs shape
//! inference and shape-compatibility checks *at build time*. A successfully
//! built patch therefore carries pre-inferred output shapes for every added
//! node, and applying it never re-runs inference — application is a straight
//! splice plus dead-node elimination.
//!
//! ```
//! use xrlflow_graph::{Graph, OpAttributes, OpKind, PatchBuilder, TensorShape};
//!
//! let mut g = Graph::new();
//! let x = g.add_input(TensorShape::new(vec![1, 8]));
//! let id = g.add_node(OpKind::Identity, OpAttributes::default(), vec![x.into()]).unwrap();
//! let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![id.into()]).unwrap();
//! g.mark_output(relu.into());
//!
//! // Bypass the Identity node as a delta: one rewire, zero added nodes.
//! let mut b = PatchBuilder::new(&g);
//! b.replace_all_uses(id.into(), x).unwrap();
//! let patch = b.finish();
//! let rewritten = g.apply_patch(&patch).unwrap();
//! assert_eq!(rewritten.num_nodes(), 2);
//! assert!(rewritten.validate().is_ok());
//! ```

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::graph::{Graph, GraphError, NodeId, TensorRef};
use crate::infer::infer_output_shapes;
use crate::op::{OpAttributes, OpKind};
use crate::shape::TensorShape;

/// Identifier of a node *added by a patch* (index into the patch's added-node
/// list, assigned by [`PatchBuilder::add_node`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatchNodeId(pub(crate) usize);

impl PatchNodeId {
    /// A reference to a specific output port of this added node.
    pub fn out(self, port: usize) -> PatchRef {
        PatchRef::New { node: self.0, port }
    }
}

impl From<PatchNodeId> for PatchRef {
    fn from(id: PatchNodeId) -> Self {
        id.out(0)
    }
}

/// A tensor reference usable inside a patch: either an existing tensor of the
/// base graph, or an output of a node the patch itself adds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatchRef {
    /// A tensor that already exists in the base graph.
    Base(TensorRef),
    /// Output `port` of the `node`-th node added by the patch.
    New {
        /// Index into the patch's added-node list.
        node: usize,
        /// Output port of the added node.
        port: usize,
    },
}

impl From<TensorRef> for PatchRef {
    fn from(r: TensorRef) -> Self {
        PatchRef::Base(r)
    }
}

impl From<NodeId> for PatchRef {
    fn from(id: NodeId) -> Self {
        PatchRef::Base(TensorRef::new(id))
    }
}

impl PatchRef {
    /// Resolves this reference to a concrete [`TensorRef`] given the node ids
    /// assigned to the patch's added nodes during application.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPatchRef`] when the reference points past
    /// the added-node list.
    pub fn resolve(self, new_ids: &[NodeId]) -> Result<TensorRef, GraphError> {
        match self {
            PatchRef::Base(r) => Ok(r),
            PatchRef::New { node, port } => new_ids
                .get(node)
                .map(|&id| TensorRef::with_port(id, port))
                .ok_or(GraphError::InvalidPatchRef { node, port }),
        }
    }
}

/// A node added by a patch, with its output shapes already inferred against
/// the base graph at patch-construction time.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchNode {
    /// The operator kind.
    pub op: OpKind,
    /// The operator attributes.
    pub attrs: OpAttributes,
    /// Inputs, referencing base tensors or earlier added nodes.
    pub inputs: Vec<PatchRef>,
    /// Pre-inferred output shapes.
    pub outputs: Vec<TensorShape>,
}

/// A delta against a fixed base [`Graph`]: nodes to add and consumer rewires
/// to perform. Produced by [`PatchBuilder`], consumed by
/// [`Graph::apply_patch`] / [`Graph::apply_patch_in_place`].
///
/// Application order is: splice all added nodes, perform the rewires in
/// recorded order, then eliminate nodes made unreachable by the rewires.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GraphPatch {
    pub(crate) added: Vec<PatchNode>,
    pub(crate) rewires: Vec<(TensorRef, PatchRef)>,
}

impl GraphPatch {
    /// The nodes this patch adds, in splice order.
    pub fn added_nodes(&self) -> &[PatchNode] {
        &self.added
    }

    /// The `(from, to)` consumer rewires, in application order.
    pub fn rewires(&self) -> &[(TensorRef, PatchRef)] {
        &self.rewires
    }

    /// `true` when applying this patch provably leaves the graph unchanged:
    /// nothing is added and every rewire maps a tensor to itself.
    pub fn is_noop(&self) -> bool {
        self.added.is_empty()
            && self.rewires.iter().all(|(from, to)| matches!(to, PatchRef::Base(r) if r == from))
    }

    /// A structural hash of the patch. Two identical patches against the same
    /// base graph produce identical graphs, so this hash is used to
    /// deduplicate rewrite candidates without materialising them.
    pub fn structural_hash(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.added.len().hash(&mut hasher);
        for node in &self.added {
            node.op.hash(&mut hasher);
            node.attrs.hash(&mut hasher);
            node.inputs.hash(&mut hasher);
            for s in &node.outputs {
                s.hash(&mut hasher);
            }
        }
        self.rewires.len().hash(&mut hasher);
        for (from, to) in &self.rewires {
            from.hash(&mut hasher);
            to.hash(&mut hasher);
        }
        hasher.finish()
    }
}

/// Builds a [`GraphPatch`] against a base graph, mirroring the mutating
/// [`Graph`] API (`add_node`, `add_constant`, `replace_all_uses`) but
/// recording deltas instead of touching a clone.
///
/// Shape inference runs eagerly, so rules can query the shapes of nodes they
/// have just added (e.g. to pick a split axis), and a finished patch is
/// guaranteed shape-consistent with its base graph.
#[derive(Debug)]
pub struct PatchBuilder<'g> {
    graph: &'g Graph,
    patch: GraphPatch,
}

impl<'g> PatchBuilder<'g> {
    /// Starts an empty patch against `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        Self { graph, patch: GraphPatch::default() }
    }

    /// The base graph this patch is being built against.
    pub fn base(&self) -> &Graph {
        self.graph
    }

    /// The shape of a patch tensor reference (base or added).
    ///
    /// # Errors
    ///
    /// Returns an error when the reference does not resolve.
    pub fn shape(&self, r: PatchRef) -> Result<&TensorShape, GraphError> {
        match r {
            PatchRef::Base(base) => self.graph.tensor_shape(base),
            PatchRef::New { node, port } => self
                .patch
                .added
                .get(node)
                .and_then(|n| n.outputs.get(port))
                .ok_or(GraphError::InvalidPatchRef { node, port }),
        }
    }

    /// Adds an operator node to the patch, running shape inference on its
    /// (base or added) inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if any input reference is invalid or shape inference
    /// fails.
    pub fn add_node(
        &mut self,
        op: OpKind,
        attrs: OpAttributes,
        inputs: Vec<PatchRef>,
    ) -> Result<PatchNodeId, GraphError> {
        let mut in_shapes = Vec::with_capacity(inputs.len());
        for r in &inputs {
            in_shapes.push(self.shape(*r)?.clone());
        }
        let outputs = infer_output_shapes(op, &attrs, &in_shapes)?;
        self.patch.added.push(PatchNode { op, attrs, inputs, outputs });
        Ok(PatchNodeId(self.patch.added.len() - 1))
    }

    /// Adds a constant source node with the given shape to the patch.
    pub fn add_constant(&mut self, shape: TensorShape) -> PatchNodeId {
        self.patch.added.push(PatchNode {
            op: OpKind::Constant,
            attrs: OpAttributes::default(),
            inputs: Vec::new(),
            outputs: vec![shape],
        });
        PatchNodeId(self.patch.added.len() - 1)
    }

    /// Records that every consumer of `from` (and every graph output reading
    /// it) must be rewired to read `to` instead.
    ///
    /// # Errors
    ///
    /// Returns an error if either reference is invalid or their shapes differ
    /// (rewiring would corrupt downstream shapes).
    pub fn replace_all_uses(&mut self, from: TensorRef, to: impl Into<PatchRef>) -> Result<(), GraphError> {
        let to = to.into();
        let from_shape = self.graph.tensor_shape(from)?;
        let to_shape = self.shape(to)?;
        if from_shape != to_shape {
            return Err(GraphError::Shape {
                op: self.graph.node(from.node)?.op,
                message: format!("cannot replace tensor of shape {from_shape} with {to_shape}"),
            });
        }
        self.patch.rewires.push((from, to));
        Ok(())
    }

    /// Finalises the patch.
    pub fn finish(self) -> GraphPatch {
        self.patch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(d: &[usize]) -> TensorShape {
        TensorShape::new(d.to_vec())
    }

    fn relu_chain() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 16]));
        let id = g.add_node(OpKind::Identity, OpAttributes::default(), vec![x.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![id.into()]).unwrap();
        g.mark_output(relu.into());
        (g, x, id, relu)
    }

    #[test]
    fn rewire_only_patch_applies_and_dce_runs() {
        let (g, x, id, _) = relu_chain();
        let mut b = PatchBuilder::new(&g);
        b.replace_all_uses(id.into(), x).unwrap();
        let patch = b.finish();
        assert!(!patch.is_noop());
        assert_eq!(patch.added_nodes().len(), 0);
        assert_eq!(patch.rewires().len(), 1);

        let out = g.apply_patch(&patch).unwrap();
        assert_eq!(out.num_nodes(), 2, "Identity node must be eliminated");
        assert!(out.validate().is_ok());
        // The base graph is untouched.
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn added_nodes_carry_preinferred_shapes() {
        let (g, x, _, relu) = relu_chain();
        let mut b = PatchBuilder::new(&g);
        let tanh = b.add_node(OpKind::Tanh, OpAttributes::default(), vec![x.into()]).unwrap();
        assert_eq!(b.shape(tanh.into()).unwrap().dims(), &[1, 16]);
        b.replace_all_uses(relu.into(), tanh).unwrap();
        let patch = b.finish();
        assert_eq!(patch.added_nodes().len(), 1);
        assert_eq!(patch.added_nodes()[0].outputs[0].dims(), &[1, 16]);

        let out = g.apply_patch(&patch).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::Tanh), 1);
        assert_eq!(out.count_op(OpKind::Relu), 0);
    }

    #[test]
    fn chained_added_nodes_can_reference_each_other() {
        let (g, x, _, relu) = relu_chain();
        let mut b = PatchBuilder::new(&g);
        let a = b.add_node(OpKind::Tanh, OpAttributes::default(), vec![x.into()]).unwrap();
        let c = b.add_node(OpKind::Sigmoid, OpAttributes::default(), vec![a.into()]).unwrap();
        b.replace_all_uses(relu.into(), c).unwrap();
        let out = g.apply_patch(&b.finish()).unwrap();
        assert!(out.validate().is_ok());
        assert_eq!(out.count_op(OpKind::Tanh), 1);
        assert_eq!(out.count_op(OpKind::Sigmoid), 1);
    }

    #[test]
    fn shape_mismatch_rejected_at_build_time() {
        let mut g = Graph::new();
        let a = g.add_input(shape(&[1, 8]));
        let b_in = g.add_input(shape(&[1, 16]));
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![a.into()]).unwrap();
        g.mark_output(relu.into());
        let mut b = PatchBuilder::new(&g);
        assert!(b.replace_all_uses(a.into(), b_in).is_err());
    }

    #[test]
    fn noop_patch_detected() {
        let (g, x, _, _) = relu_chain();
        let mut b = PatchBuilder::new(&g);
        b.replace_all_uses(x.into(), TensorRef::new(x)).unwrap();
        assert!(b.finish().is_noop());
        assert!(GraphPatch::default().is_noop());
    }

    #[test]
    fn structural_hash_distinguishes_patches() {
        let (g, x, id, relu) = relu_chain();
        let mut b1 = PatchBuilder::new(&g);
        b1.replace_all_uses(id.into(), x).unwrap();
        let p1 = b1.finish();

        let mut b2 = PatchBuilder::new(&g);
        let tanh = b2.add_node(OpKind::Tanh, OpAttributes::default(), vec![x.into()]).unwrap();
        b2.replace_all_uses(relu.into(), tanh).unwrap();
        let p2 = b2.finish();

        assert_ne!(p1.structural_hash(), p2.structural_hash());
        // Hash is deterministic.
        assert_eq!(p1.structural_hash(), p1.clone().structural_hash());
    }

    #[test]
    fn in_place_application_matches_functional() {
        let (g, x, id, _) = relu_chain();
        let mut b = PatchBuilder::new(&g);
        b.replace_all_uses(id.into(), x).unwrap();
        let patch = b.finish();
        let functional = g.apply_patch(&patch).unwrap();
        let mut in_place = g.clone();
        in_place.apply_patch_in_place(&patch).unwrap();
        assert_eq!(functional.canonical_hash(), in_place.canonical_hash());
    }

    #[test]
    fn invalid_patch_ref_is_an_error() {
        let (g, x, _, _) = relu_chain();
        let b = PatchBuilder::new(&g);
        assert!(matches!(
            b.shape(PatchRef::New { node: 0, port: 0 }),
            Err(GraphError::InvalidPatchRef { .. })
        ));
        let mut b = PatchBuilder::new(&g);
        let t = b.add_node(OpKind::Tanh, OpAttributes::default(), vec![x.into()]).unwrap();
        assert!(b.shape(t.out(3)).is_err());
    }
}
