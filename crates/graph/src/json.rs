//! Versioned JSON interchange for [`Graph`] — the graph ingestion boundary.
//!
//! Every public entry point of the stack historically assumed trusted
//! in-process graphs built by the model zoo; serving arbitrary user graphs
//! requires a serialisable interchange format whose importer *never panics*:
//! unknown operators, arity/attribute errors, dangling edges, cycles and
//! shape-inference failures all surface as typed [`GraphError`] variants.
//!
//! The format is hand-rolled (the build environment has no crates.io access,
//! so no serde), versioned, and round-trip exact: exporting a graph and
//! re-importing it preserves the node/edge structure, names, attributes and
//! — crucially for the serving cache — [`Graph::canonical_hash`].
//!
//! # Document shape (version 1)
//!
//! ```json
//! {
//!   "format": "xrlflow-graph",
//!   "version": 1,
//!   "nodes": [
//!     {"op": "Input", "outputs": [[1, 64]]},
//!     {"op": "Weight", "outputs": [[64, 32]]},
//!     {"op": "MatMul", "inputs": [[0, 0], [1, 0]], "outputs": [[1, 32]]}
//!   ],
//!   "outputs": [[2, 0]]
//! }
//! ```
//!
//! Nodes are stored in (compacted) storage order; `inputs` and the
//! top-level `outputs` are `[node_index, port]` pairs. Non-default operator
//! attributes ride in an `"attrs"` object. Stored output shapes are
//! mandatory and re-checked against shape inference on import, so a
//! tampered document cannot smuggle in inconsistent shapes.
//!
//! # Examples
//!
//! ```
//! use xrlflow_graph::{Graph, OpAttributes, OpKind, TensorShape};
//!
//! let mut g = Graph::new();
//! let x = g.add_input(TensorShape::new(vec![1, 8]));
//! let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![x.into()]).unwrap();
//! g.mark_output(relu.into());
//!
//! let text = g.to_json();
//! let back = Graph::from_json(&text).unwrap();
//! assert_eq!(back.canonical_hash(), g.canonical_hash());
//! assert!(Graph::from_json("{\"format\": \"bogus\"}").is_err());
//! ```

use std::collections::HashMap;

use crate::graph::{Graph, GraphError, Node, NodeId, TensorRef};
use crate::op::{FusedActivation, OpAttributes, OpKind, Padding};
use crate::shape::TensorShape;

/// The interchange version this build writes and accepts.
pub const GRAPH_JSON_VERSION: u64 = 1;

/// The `"format"` marker identifying a graph document.
pub const GRAPH_JSON_FORMAT: &str = "xrlflow-graph";

/// Nesting depth bound of the parser (a malicious `[[[[…` document must
/// error out, not overflow the stack).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value — the minimal generic document model shared by the
/// graph interchange and the serving layer's persistent result cache.
///
/// Objects preserve key order as a `Vec` of pairs; duplicate keys are
/// rejected at parse time.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document, rejecting trailing content.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer. `None` for
    /// non-numbers, negatives, non-integers and values above 2^53 (where
    /// `f64` stops being exact).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || !(0.0..=9.007_199_254_740_992e15).contains(&n) {
            return None;
        }
        Some(n as usize)
    }

    /// The boolean payload, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialises this value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                // JSON has no non-finite literals; `null` keeps the document
                // well-formed and the importer rejects it with a typed error.
                if n.is_finite() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_json_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_json_string(k, out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') | Some(b'f') => {
                if self.literal("true") {
                    Ok(JsonValue::Bool(true))
                } else if self.literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b'n') => {
                if self.literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte {:?} at {}", b as char, self.pos)),
            None => Err("unexpected end of document".to_string()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, JsonValue)> = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "non-ASCII \\u escape")?,
                                16,
                            )
                            .map_err(|_| "invalid \\u escape")?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(JsonValue::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

fn parse_err(message: impl Into<String>) -> GraphError {
    GraphError::Parse(message.into())
}

impl Graph {
    /// Serialises the graph as a version-1 interchange document (see the
    /// [module docs](crate::json)). Node ids are compacted to dense indices
    /// preserving storage order, so the round trip preserves
    /// [`Graph::canonical_hash`].
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// The interchange document as a [`JsonValue`] tree — used directly by
    /// the serving layer to embed graphs inside larger documents without
    /// string re-escaping.
    pub fn to_json_value(&self) -> JsonValue {
        let mut index: HashMap<NodeId, usize> = HashMap::new();
        let mut nodes = Vec::new();
        for (id, _) in self.iter() {
            index.insert(id, nodes.len());
            nodes.push(id);
        }
        let ref_value = |r: &TensorRef| {
            JsonValue::Array(vec![JsonValue::Number(index[&r.node] as f64), JsonValue::Number(r.port as f64)])
        };
        let node_values: Vec<JsonValue> = nodes
            .iter()
            .map(|&id| {
                let node = self.node(id).expect("iterated node is live");
                let mut pairs = vec![("op".to_string(), JsonValue::String(node.op.name().to_string()))];
                if let Some(name) = &node.name {
                    pairs.push(("name".to_string(), JsonValue::String(name.clone())));
                }
                if !node.inputs.is_empty() {
                    pairs.push((
                        "inputs".to_string(),
                        JsonValue::Array(node.inputs.iter().map(ref_value).collect()),
                    ));
                }
                if node.attrs != OpAttributes::default() {
                    pairs.push(("attrs".to_string(), attrs_to_json(&node.attrs)));
                }
                pairs.push((
                    "outputs".to_string(),
                    JsonValue::Array(node.outputs.iter().map(shape_to_json).collect()),
                ));
                JsonValue::Object(pairs)
            })
            .collect();
        JsonValue::Object(vec![
            ("format".to_string(), JsonValue::String(GRAPH_JSON_FORMAT.to_string())),
            ("version".to_string(), JsonValue::Number(GRAPH_JSON_VERSION as f64)),
            ("nodes".to_string(), JsonValue::Array(node_values)),
            ("outputs".to_string(), JsonValue::Array(self.outputs().iter().map(ref_value).collect())),
        ])
    }

    /// Imports a graph from an interchange document, validating everything:
    /// JSON syntax and schema, operator names, attribute values, reference
    /// resolution, acyclicity, and agreement of every stored output shape
    /// with shape inference.
    ///
    /// # Errors
    ///
    /// Never panics on malformed input. Returns [`GraphError::Parse`] for
    /// syntax/schema violations, [`GraphError::UnknownOp`] for unknown
    /// operator names, and the usual structural variants
    /// ([`GraphError::InvalidNode`], [`GraphError::Cycle`],
    /// [`GraphError::Shape`], [`GraphError::Arity`], …) for semantic errors
    /// found during validation.
    pub fn from_json(text: &str) -> Result<Graph, GraphError> {
        let value = JsonValue::parse(text).map_err(parse_err)?;
        Graph::from_json_value(&value)
    }

    /// Imports a graph from an already-parsed [`JsonValue`] tree (see
    /// [`Graph::from_json`]).
    ///
    /// # Errors
    ///
    /// Same as [`Graph::from_json`].
    pub fn from_json_value(value: &JsonValue) -> Result<Graph, GraphError> {
        let pairs = value.as_object().ok_or_else(|| parse_err("top level must be an object"))?;
        for (key, _) in pairs {
            if !matches!(key.as_str(), "format" | "version" | "nodes" | "outputs") {
                return Err(parse_err(format!("unknown top-level key {key:?}")));
            }
        }
        let format = value
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| parse_err("missing \"format\" marker"))?;
        if format != GRAPH_JSON_FORMAT {
            return Err(parse_err(format!("not a graph document (format {format:?})")));
        }
        let version = value
            .get("version")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| parse_err("missing \"version\""))?;
        if version as u64 != GRAPH_JSON_VERSION {
            return Err(parse_err(format!(
                "unsupported version {version} (this build reads version {GRAPH_JSON_VERSION})"
            )));
        }
        let node_values = value
            .get("nodes")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| parse_err("missing \"nodes\" array"))?;
        if node_values.len() > u32::MAX as usize {
            return Err(parse_err("too many nodes"));
        }
        let mut nodes: Vec<Option<Node>> = Vec::with_capacity(node_values.len());
        for (i, nv) in node_values.iter().enumerate() {
            nodes.push(Some(node_from_json(i, nv)?));
        }
        let output_values = value
            .get("outputs")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| parse_err("missing \"outputs\" array"))?;
        let mut outputs = Vec::with_capacity(output_values.len());
        for ov in output_values {
            outputs.push(tensor_ref_from_json(ov).ok_or_else(|| {
                parse_err("graph outputs must be [node_index, port] pairs of non-negative integers")
            })?);
        }
        let graph = Graph::from_raw_parts(nodes, outputs);
        // Full semantic validation: every reference resolves (dangling edges
        // -> InvalidNode/InvalidPort), the graph is acyclic, and every
        // non-source node's stored output shapes agree with shape inference
        // re-run on its actual inputs (arity and attribute errors surface
        // here as the inference errors they are).
        graph.validate()?;
        Ok(graph)
    }
}

fn shape_to_json(shape: &TensorShape) -> JsonValue {
    JsonValue::Array(shape.dims().iter().map(|&d| JsonValue::Number(d as f64)).collect())
}

fn shape_from_json(v: &JsonValue) -> Result<TensorShape, GraphError> {
    let dims_v = v.as_array().ok_or_else(|| parse_err("a shape must be an array of dimensions"))?;
    let mut dims = Vec::with_capacity(dims_v.len());
    for d in dims_v {
        dims.push(
            d.as_usize()
                .filter(|&d| d <= u32::MAX as usize)
                .ok_or_else(|| parse_err("shape dimensions must be integers in 0..=2^32"))?,
        );
    }
    let shape = TensorShape::new(dims);
    if shape.checked_numel().is_none() {
        return Err(parse_err(format!("shape {shape} overflows the element count")));
    }
    Ok(shape)
}

fn tensor_ref_from_json(v: &JsonValue) -> Option<TensorRef> {
    let pair = v.as_array()?;
    if pair.len() != 2 {
        return None;
    }
    let node = pair[0].as_usize().filter(|&n| n <= u32::MAX as usize)?;
    let port = pair[1].as_usize()?;
    Some(TensorRef::with_port(NodeId(node as u32), port))
}

fn node_from_json(index: usize, v: &JsonValue) -> Result<Node, GraphError> {
    let pairs = v.as_object().ok_or_else(|| parse_err(format!("node {index} must be an object")))?;
    for (key, _) in pairs {
        if !matches!(key.as_str(), "op" | "name" | "inputs" | "attrs" | "outputs") {
            return Err(parse_err(format!("node {index}: unknown key {key:?}")));
        }
    }
    let op_name = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| parse_err(format!("node {index}: missing \"op\"")))?;
    let op = OpKind::from_name(op_name).ok_or_else(|| GraphError::UnknownOp(op_name.to_string()))?;
    let name = match v.get("name") {
        None => None,
        Some(n) => Some(
            n.as_str()
                .map(str::to_string)
                .ok_or_else(|| parse_err(format!("node {index}: \"name\" must be a string")))?,
        ),
    };
    let mut inputs = Vec::new();
    if let Some(iv) = v.get("inputs") {
        let items =
            iv.as_array().ok_or_else(|| parse_err(format!("node {index}: \"inputs\" must be an array")))?;
        for item in items {
            inputs.push(tensor_ref_from_json(item).ok_or_else(|| {
                parse_err(format!(
                    "node {index}: inputs must be [node_index, port] pairs of non-negative integers"
                ))
            })?);
        }
    }
    let attrs = match v.get("attrs") {
        None => OpAttributes::default(),
        Some(av) => attrs_from_json(index, av)?,
    };
    let outputs_v = v
        .get("outputs")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| parse_err(format!("node {index}: missing \"outputs\" shape list")))?;
    let mut outputs = Vec::with_capacity(outputs_v.len());
    for ov in outputs_v {
        outputs.push(shape_from_json(ov)?);
    }
    if op.is_source() {
        if !inputs.is_empty() {
            return Err(parse_err(format!("node {index}: source operator {op} takes no inputs")));
        }
        if attrs != OpAttributes::default() {
            return Err(parse_err(format!("node {index}: source operator {op} takes no attributes")));
        }
        if outputs.len() != 1 {
            return Err(parse_err(format!(
                "node {index}: source operator {op} must have exactly one output shape"
            )));
        }
    }
    Ok(Node { op, attrs, inputs, outputs, name })
}

fn attrs_to_json(attrs: &OpAttributes) -> JsonValue {
    let usize_pair =
        |p: &[usize; 2]| JsonValue::Array(p.iter().map(|&v| JsonValue::Number(v as f64)).collect());
    let usize_list = |l: &[usize]| JsonValue::Array(l.iter().map(|&v| JsonValue::Number(v as f64)).collect());
    let mut pairs = Vec::new();
    if let Some(kernel) = &attrs.kernel {
        pairs.push(("kernel".to_string(), usize_pair(kernel)));
    }
    if let Some(stride) = &attrs.stride {
        pairs.push(("stride".to_string(), usize_pair(stride)));
    }
    if attrs.padding != Padding::default() {
        pairs.push(("padding".to_string(), JsonValue::String(attrs.padding.name().to_string())));
    }
    if attrs.groups != 0 {
        pairs.push(("groups".to_string(), JsonValue::Number(attrs.groups as f64)));
    }
    if let Some(axis) = attrs.axis {
        pairs.push(("axis".to_string(), JsonValue::Number(axis as f64)));
    }
    if attrs.num_splits != 0 {
        pairs.push(("num_splits".to_string(), JsonValue::Number(attrs.num_splits as f64)));
    }
    if let Some(perm) = &attrs.perm {
        pairs.push(("perm".to_string(), usize_list(perm)));
    }
    if let Some(target) = &attrs.target_shape {
        pairs.push(("target_shape".to_string(), usize_list(target)));
    }
    if attrs.epsilon.to_bits() != 0.0f32.to_bits() {
        pairs.push(("epsilon".to_string(), JsonValue::Number(attrs.epsilon as f64)));
    }
    if let Some(act) = attrs.fused_activation {
        pairs.push(("fused_activation".to_string(), JsonValue::String(act.name().to_string())));
    }
    if attrs.folded {
        pairs.push(("folded".to_string(), JsonValue::Bool(true)));
    }
    JsonValue::Object(pairs)
}

fn attrs_from_json(index: usize, v: &JsonValue) -> Result<OpAttributes, GraphError> {
    let pairs = v.as_object().ok_or_else(|| parse_err(format!("node {index}: attrs must be an object")))?;
    let attr_err = |message: String| parse_err(format!("node {index}: {message}"));
    let usize_field = |v: &JsonValue, what: &str| {
        v.as_usize()
            .filter(|&n| n <= u32::MAX as usize)
            .ok_or_else(|| attr_err(format!("{what} must be an integer in 0..=2^32")))
    };
    let pair_field = |v: &JsonValue, what: &str| -> Result<[usize; 2], GraphError> {
        let items = v.as_array().ok_or_else(|| attr_err(format!("{what} must be a two-element array")))?;
        if items.len() != 2 {
            return Err(attr_err(format!("{what} must be a two-element array")));
        }
        Ok([usize_field(&items[0], what)?, usize_field(&items[1], what)?])
    };
    let list_field = |v: &JsonValue, what: &str| -> Result<Vec<usize>, GraphError> {
        let items = v.as_array().ok_or_else(|| attr_err(format!("{what} must be an array")))?;
        items.iter().map(|item| usize_field(item, what)).collect()
    };
    let mut attrs = OpAttributes::default();
    for (key, value) in pairs {
        match key.as_str() {
            "kernel" => attrs.kernel = Some(pair_field(value, "kernel")?),
            "stride" => attrs.stride = Some(pair_field(value, "stride")?),
            "padding" => {
                let name = value.as_str().ok_or_else(|| attr_err("padding must be a string".into()))?;
                attrs.padding = Padding::from_name(name)
                    .ok_or_else(|| attr_err(format!("unknown padding mode {name:?}")))?;
            }
            "groups" => attrs.groups = usize_field(value, "groups")?,
            "axis" => attrs.axis = Some(usize_field(value, "axis")?),
            "num_splits" => attrs.num_splits = usize_field(value, "num_splits")?,
            "perm" => attrs.perm = Some(list_field(value, "perm")?),
            "target_shape" => attrs.target_shape = Some(list_field(value, "target_shape")?),
            "epsilon" => {
                let n = value.as_f64().ok_or_else(|| attr_err("epsilon must be a number".into()))?;
                attrs.epsilon = n as f32;
                if !attrs.epsilon.is_finite() {
                    return Err(attr_err("epsilon must be finite".into()));
                }
            }
            "fused_activation" => {
                let name =
                    value.as_str().ok_or_else(|| attr_err("fused_activation must be a string".into()))?;
                attrs.fused_activation = Some(
                    FusedActivation::from_name(name)
                        .ok_or_else(|| attr_err(format!("unknown fused activation {name:?}")))?,
                );
            }
            "folded" => {
                attrs.folded = value.as_bool().ok_or_else(|| attr_err("folded must be a bool".into()))?
            }
            other => return Err(attr_err(format!("unknown attribute {other:?}"))),
        }
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(d: &[usize]) -> TensorShape {
        TensorShape::new(d.to_vec())
    }

    fn mlp() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 64]));
        let w = g.add_weight(shape(&[64, 32]));
        let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
        let relu = g.add_named_node("act", OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap();
        g.mark_output(relu.into());
        g
    }

    #[test]
    fn round_trip_preserves_structure_names_and_hash() {
        let g = mlp();
        let text = g.to_json();
        let back = Graph::from_json(&text).unwrap();
        assert_eq!(back.canonical_hash(), g.canonical_hash());
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        let named: Vec<_> = back.iter().filter_map(|(_, n)| n.name.clone()).collect();
        assert_eq!(named, vec!["act".to_string()]);
        // The exported text itself is stable under a round trip.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn round_trip_preserves_attributes() {
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 3, 32, 32]));
        let w = g.add_weight(shape(&[16, 3, 3, 3]));
        let conv = g
            .add_node(
                OpKind::Conv2d,
                OpAttributes::conv2d([3, 3], [2, 2], Padding::Valid, 1)
                    .with_fused_activation(FusedActivation::Relu),
                vec![x.into(), w.into()],
            )
            .unwrap();
        g.mark_output(conv.into());
        let back = Graph::from_json(&g.to_json()).unwrap();
        assert_eq!(back.canonical_hash(), g.canonical_hash());
        let conv_node = back.iter().find(|(_, n)| n.op == OpKind::Conv2d).unwrap().1;
        assert_eq!(conv_node.attrs.kernel, Some([3, 3]));
        assert_eq!(conv_node.attrs.stride, Some([2, 2]));
        assert_eq!(conv_node.attrs.padding, Padding::Valid);
        assert_eq!(conv_node.attrs.fused_activation, Some(FusedActivation::Relu));
    }

    #[test]
    fn round_trip_preserves_hash_after_holes() {
        // Dead-node elimination leaves holes in node storage; export
        // compacts them without disturbing the canonical hash.
        let mut g = Graph::new();
        let x = g.add_input(shape(&[1, 8]));
        let id = g.add_node(OpKind::Identity, OpAttributes::default(), vec![x.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![id.into()]).unwrap();
        g.mark_output(relu.into());
        g.replace_all_uses(id.into(), x.into()).unwrap();
        g.eliminate_dead_nodes();
        let back = Graph::from_json(&g.to_json()).unwrap();
        assert_eq!(back.canonical_hash(), g.canonical_hash());
        assert_eq!(back.num_nodes(), 2);
    }

    #[test]
    fn truncated_and_garbage_documents_are_parse_errors() {
        let text = mlp().to_json();
        for cut in [1, text.len() / 2, text.len() - 1] {
            assert!(
                matches!(Graph::from_json(&text[..cut]), Err(GraphError::Parse(_))),
                "truncation at {cut} must be a parse error"
            );
        }
        assert!(matches!(Graph::from_json("not json"), Err(GraphError::Parse(_))));
        assert!(matches!(Graph::from_json(""), Err(GraphError::Parse(_))));
        let deep = format!("{}1{}", "[".repeat(4000), "]".repeat(4000));
        assert!(matches!(Graph::from_json(&deep), Err(GraphError::Parse(_))), "deep nesting must error");
    }

    #[test]
    fn wrong_format_and_version_are_rejected() {
        let err = Graph::from_json("{\"format\": \"other\", \"version\": 1, \"nodes\": [], \"outputs\": []}")
            .unwrap_err();
        assert!(matches!(err, GraphError::Parse(_)));
        let err = Graph::from_json(
            "{\"format\": \"xrlflow-graph\", \"version\": 99, \"nodes\": [], \"outputs\": []}",
        )
        .unwrap_err();
        assert!(err.to_string().contains("version"), "got {err}");
    }

    #[test]
    fn unknown_op_is_a_typed_error() {
        let text = mlp().to_json().replace("MatMul", "QuantumMul");
        assert!(matches!(Graph::from_json(&text), Err(GraphError::UnknownOp(name)) if name == "QuantumMul"));
    }

    #[test]
    fn dangling_edges_and_ports_are_typed_errors() {
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Input\", \"outputs\": [[1, 8]]},\
            {\"op\": \"Relu\", \"inputs\": [[7, 0]], \"outputs\": [[1, 8]]}\
            ], \"outputs\": [[1, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::InvalidNode(_))));
        let doc = doc.replace("[7, 0]", "[0, 3]");
        assert!(matches!(Graph::from_json(&doc), Err(GraphError::InvalidPort(_))));
    }

    #[test]
    fn cyclic_rewires_are_typed_errors() {
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Relu\", \"inputs\": [[1, 0]], \"outputs\": [[1, 8]]},\
            {\"op\": \"Relu\", \"inputs\": [[0, 0]], \"outputs\": [[1, 8]]}\
            ], \"outputs\": [[1, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::Cycle)));
    }

    #[test]
    fn tampered_shapes_and_attributes_are_typed_errors() {
        let g = mlp();
        // Stored output shape disagreeing with inference.
        let bad_shape = g.to_json().replace("[1, 32]", "[1, 33]");
        assert!(matches!(Graph::from_json(&bad_shape), Err(GraphError::Shape { .. })));
        // A transpose with a non-permutation perm must not panic.
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Input\", \"outputs\": [[2, 3]]},\
            {\"op\": \"Transpose\", \"inputs\": [[0, 0]], \"attrs\": {\"perm\": [0, 0]}, \
             \"outputs\": [[3, 2]]}\
            ], \"outputs\": [[1, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::Shape { .. })));
        // A zero stride must not divide by zero.
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Input\", \"outputs\": [[1, 1, 8, 8]]},\
            {\"op\": \"MaxPool2d\", \"inputs\": [[0, 0]], \
             \"attrs\": {\"kernel\": [2, 2], \"stride\": [0, 2]}, \"outputs\": [[1, 1, 4, 4]]}\
            ], \"outputs\": [[1, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::Shape { .. })));
        // Unknown attribute keys are schema violations.
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Input\", \"outputs\": [[1, 8]]},\
            {\"op\": \"Relu\", \"inputs\": [[0, 0]], \"attrs\": {\"wat\": 1}, \"outputs\": [[1, 8]]}\
            ], \"outputs\": [[1, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::Parse(_))));
    }

    #[test]
    fn wrong_arity_is_a_typed_error() {
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Input\", \"outputs\": [[1, 8]]},\
            {\"op\": \"MatMul\", \"inputs\": [[0, 0]], \"outputs\": [[1, 8]]}\
            ], \"outputs\": [[1, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::Arity { .. })));
    }

    #[test]
    fn oversized_shapes_are_rejected_without_overflow() {
        // Dimensions above 2^32 and products that overflow usize must both
        // be parse errors, not debug-build arithmetic panics.
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Input\", \"outputs\": [[9007199254740992]]}\
            ], \"outputs\": [[0, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::Parse(_))));
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Input\", \"outputs\": [[4000000000, 4000000000, 4000000000]]}\
            ], \"outputs\": [[0, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::Parse(_))));
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Input\", \"outputs\": [[1.5, 8]]}\
            ], \"outputs\": [[0, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::Parse(_))));
    }

    #[test]
    fn source_schema_is_enforced() {
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Input\", \"outputs\": [[1, 8]]},\
            {\"op\": \"Weight\", \"inputs\": [[0, 0]], \"outputs\": [[1, 8]]}\
            ], \"outputs\": [[0, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::Parse(_))));
        let doc = "{\"format\": \"xrlflow-graph\", \"version\": 1, \"nodes\": [\
            {\"op\": \"Input\", \"outputs\": [[1, 8], [1, 8]]}\
            ], \"outputs\": [[0, 0]]}";
        assert!(matches!(Graph::from_json(doc), Err(GraphError::Parse(_))));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        assert!(JsonValue::parse("{\"a\": 1, \"a\": 2}").is_err());
    }

    #[test]
    fn json_value_accessors_and_writer() {
        let v = JsonValue::parse("{\"s\": \"x\\n\", \"n\": 2.5, \"i\": 7, \"b\": true, \"a\": [1]}").unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\n"));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("n").and_then(JsonValue::as_usize), None);
        assert_eq!(v.get("i").and_then(JsonValue::as_usize), Some(7));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(JsonValue::as_array).map(<[JsonValue]>::len), Some(1));
        let round = JsonValue::parse(&v.to_json()).unwrap();
        assert_eq!(round, v);
    }
}
