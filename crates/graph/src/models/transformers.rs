//! Transformer members of the model zoo: BERT, ViT, DALL-E (decoder-only
//! text-to-image transformer) and the Transformer-Transducer (T-T).

use crate::graph::{Graph, GraphError};
use crate::op::{OpAttributes, OpKind, Padding};

use super::common::{layer_norm, linear, transformer_layer, ts, TransformerLayerConfig};
use super::ModelScale;

/// Builds BERT-base (Devlin et al., 2019): embedding lookup followed by a
/// stack of transformer encoder layers and a pooler.
///
/// `seq_len` is the input token length (128 in the paper's evaluation).
pub fn bert(seq_len: usize, scale: ModelScale) -> Result<Graph, GraphError> {
    let (layers, d_model, heads, d_ff) = match scale {
        ModelScale::Paper => (12, 768, 12, 3072),
        ModelScale::Bench => (2, 128, 4, 512),
    };
    let mut g = Graph::new();

    // Token ids and embedding table.
    let ids = g.add_input(ts(&[1, seq_len]));
    let table = g.add_weight(ts(&[30522, d_model]));
    let emb = g.add_node(OpKind::Embedding, OpAttributes::default(), vec![table.into(), ids.into()])?;
    // Positional embeddings.
    let pos = g.add_weight(ts(&[1, seq_len, d_model]));
    let h0 = g.add_node(OpKind::Add, OpAttributes::default(), vec![emb.into(), pos.into()])?;
    let mut h = layer_norm(&mut g, h0.into(), d_model)?;

    let cfg = TransformerLayerConfig { seq_len, d_model, num_heads: heads, d_ff, gelu: true };
    for _ in 0..layers {
        h = transformer_layer(&mut g, h, &cfg)?;
    }

    // Pooler: first-token slice -> dense -> tanh.
    let first = g.add_node(
        OpKind::Slice,
        OpAttributes { target_shape: Some(vec![1, 1, d_model]), ..Default::default() },
        vec![h],
    )?;
    let squeezed =
        g.add_node(OpKind::Reshape, OpAttributes::reshape(vec![1, d_model]), vec![first.into()])?;
    let pooled = linear(&mut g, squeezed.into(), d_model, d_model, true)?;
    let out = g.add_node(OpKind::Tanh, OpAttributes::default(), vec![pooled])?;
    g.mark_output(out.into());
    Ok(g)
}

/// Builds ViT-base (Dosovitskiy et al.): non-overlapping patch embedding
/// convolution, class-token-free encoder stack and a classification head.
pub fn vit(image_size: usize, scale: ModelScale) -> Result<Graph, GraphError> {
    let (layers, d_model, heads, d_ff) = match scale {
        ModelScale::Paper => (12, 768, 12, 3072),
        ModelScale::Bench => (2, 128, 4, 512),
    };
    let patch = 16;
    let tokens = (image_size / patch) * (image_size / patch);
    let mut g = Graph::new();

    let x = g.add_input(ts(&[1, 3, image_size, image_size]));
    // Patch embedding as a strided convolution.
    let w = g.add_weight(ts(&[d_model, 3, patch, patch]));
    let conv = g.add_node(
        OpKind::Conv2d,
        OpAttributes::conv2d([patch, patch], [patch, patch], Padding::Valid, 1),
        vec![x.into(), w.into()],
    )?;
    // [1, d, gh, gw] -> [1, tokens, d]
    let reshaped =
        g.add_node(OpKind::Reshape, OpAttributes::reshape(vec![1, d_model, tokens]), vec![conv.into()])?;
    let seq = g.add_node(OpKind::Transpose, OpAttributes::transpose(vec![0, 2, 1]), vec![reshaped.into()])?;
    let pos = g.add_weight(ts(&[1, tokens, d_model]));
    let h0 = g.add_node(OpKind::Add, OpAttributes::default(), vec![seq.into(), pos.into()])?;

    let cfg = TransformerLayerConfig { seq_len: tokens, d_model, num_heads: heads, d_ff, gelu: true };
    let mut h = h0.into();
    for _ in 0..layers {
        h = transformer_layer(&mut g, h, &cfg)?;
    }
    let normed = layer_norm(&mut g, h, d_model)?;

    // Mean-pool tokens and classify.
    let pooled = g.add_node(OpKind::ReduceMean, OpAttributes::with_axis(1), vec![normed])?;
    let flat = g.add_node(OpKind::Reshape, OpAttributes::reshape(vec![1, d_model]), vec![pooled.into()])?;
    let logits = linear(&mut g, flat.into(), d_model, 1000, true)?;
    let probs = g.add_node(OpKind::Softmax, OpAttributes::with_axis(1), vec![logits])?;
    g.mark_output(probs.into());
    Ok(g)
}

/// Builds a DALL-E-style decoder-only transformer (Ramesh et al., 2021)
/// operating over a combined text + image token sequence.
pub fn dalle(seq_len: usize, scale: ModelScale) -> Result<Graph, GraphError> {
    let (layers, d_model, heads, d_ff) = match scale {
        ModelScale::Paper => (12, 1024, 16, 4096),
        ModelScale::Bench => (2, 128, 4, 512),
    };
    let mut g = Graph::new();

    let ids = g.add_input(ts(&[1, seq_len]));
    let table = g.add_weight(ts(&[16384, d_model]));
    let emb = g.add_node(OpKind::Embedding, OpAttributes::default(), vec![table.into(), ids.into()])?;
    let pos = g.add_weight(ts(&[1, seq_len, d_model]));
    let h0 = g.add_node(OpKind::Add, OpAttributes::default(), vec![emb.into(), pos.into()])?;

    let cfg = TransformerLayerConfig { seq_len, d_model, num_heads: heads, d_ff, gelu: true };
    let mut h = h0.into();
    for _ in 0..layers {
        h = transformer_layer(&mut g, h, &cfg)?;
    }
    let normed = layer_norm(&mut g, h, d_model)?;
    // Project back to the image-token vocabulary.
    let logits = linear(&mut g, normed, d_model, 8192, false)?;
    let probs = g.add_node(OpKind::Softmax, OpAttributes::with_axis(2), vec![logits])?;
    g.mark_output(probs.into());
    Ok(g)
}

/// Builds a Transformer-Transducer (Zhang et al., 2020): an audio encoder and
/// a label predictor, combined by a joint network.
pub fn transformer_transducer(frames: usize, scale: ModelScale) -> Result<Graph, GraphError> {
    let (enc_layers, pred_layers, d_model, heads, d_ff) = match scale {
        ModelScale::Paper => (12, 2, 512, 8, 2048),
        ModelScale::Bench => (2, 1, 128, 4, 512),
    };
    let label_len = (frames / 4).max(8);
    let mut g = Graph::new();

    // --- Audio encoder ---
    let audio = g.add_input(ts(&[1, frames, 80]));
    let mut enc = linear(&mut g, audio.into(), 80, d_model, true)?;
    let enc_cfg = TransformerLayerConfig { seq_len: frames, d_model, num_heads: heads, d_ff, gelu: false };
    for _ in 0..enc_layers {
        enc = transformer_layer(&mut g, enc, &enc_cfg)?;
    }
    let enc = layer_norm(&mut g, enc, d_model)?;

    // --- Label predictor ---
    let labels = g.add_input(ts(&[1, label_len]));
    let table = g.add_weight(ts(&[4096, d_model]));
    let emb = g.add_node(OpKind::Embedding, OpAttributes::default(), vec![table.into(), labels.into()])?;
    let pred_cfg =
        TransformerLayerConfig { seq_len: label_len, d_model, num_heads: heads, d_ff, gelu: false };
    let mut pred = emb.into();
    for _ in 0..pred_layers {
        pred = transformer_layer(&mut g, pred, &pred_cfg)?;
    }
    let pred = layer_norm(&mut g, pred, d_model)?;

    // --- Joint network ---
    // Project both streams to the joint dimension, expand, add and classify.
    let joint_dim = d_model;
    let enc_proj = linear(&mut g, enc, d_model, joint_dim, true)?;
    let pred_proj = linear(&mut g, pred, d_model, joint_dim, true)?;
    // [1, T, d] -> [1, T, 1, d] and [1, U, d] -> [1, 1, U, d]; Add broadcasts to [1, T, U, d].
    let enc_e = g.add_node(OpKind::Unsqueeze, OpAttributes::with_axis(2), vec![enc_proj])?;
    let pred_e = g.add_node(OpKind::Unsqueeze, OpAttributes::with_axis(1), vec![pred_proj])?;
    let joint = g.add_node(OpKind::Add, OpAttributes::default(), vec![enc_e.into(), pred_e.into()])?;
    let act = g.add_node(OpKind::Tanh, OpAttributes::default(), vec![joint.into()])?;
    let logits = linear(&mut g, act.into(), joint_dim, 4096, true)?;
    let probs = g.add_node(OpKind::Softmax, OpAttributes::with_axis(3), vec![logits])?;
    g.mark_output(probs.into());
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_builds_and_validates() {
        let g = bert(128, ModelScale::Bench).unwrap();
        assert!(g.validate().is_ok());
        assert!(g.count_op(OpKind::BatchMatMul) >= 4);
        assert_eq!(g.count_op(OpKind::Embedding), 1);
    }

    #[test]
    fn bert_paper_scale_has_twelve_layers() {
        let g = bert(64, ModelScale::Paper).unwrap();
        assert!(g.validate().is_ok());
        // Two batched matmuls per attention layer.
        assert_eq!(g.count_op(OpKind::BatchMatMul), 24);
    }

    #[test]
    fn vit_builds_and_validates() {
        let g = vit(224, ModelScale::Bench).unwrap();
        assert!(g.validate().is_ok());
        // Patch embedding is a convolution.
        assert_eq!(g.count_op(OpKind::Conv2d), 1);
        assert!(g.count_op(OpKind::Softmax) >= 3);
    }

    #[test]
    fn dalle_builds_and_validates() {
        let g = dalle(64, ModelScale::Bench).unwrap();
        assert!(g.validate().is_ok());
        assert_eq!(g.count_op(OpKind::Embedding), 1);
    }

    #[test]
    fn transformer_transducer_builds_and_validates() {
        let g = transformer_transducer(64, ModelScale::Bench).unwrap();
        assert!(g.validate().is_ok());
        // Two input streams: audio frames and label tokens.
        assert_eq!(g.count_op(OpKind::Input), 2);
    }

    #[test]
    fn bert_seq_len_variations_build() {
        // Figure 7 generalises across input sequence lengths.
        for seq in [32, 64, 128, 256] {
            let g = bert(seq, ModelScale::Bench).unwrap();
            assert!(g.validate().is_ok(), "failed for seq {seq}");
        }
    }
}
