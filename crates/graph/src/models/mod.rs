//! The model zoo: programmatic builders for every DNN evaluated in the paper.
//!
//! The paper evaluates seven workloads (Table 3): InceptionV3, SqueezeNet and
//! ResNeXt-50 (convolutional) plus BERT, DALL-E, T-T and ViT (transformer),
//! and additionally uses ResNet-18 in the Table 2 motivation experiment. The
//! optimisers never look at weight values, so the builders produce operator
//! graphs with realistic shapes and structural placeholders for weights.

mod common;
mod conv_nets;
mod transformers;

pub use common::{
    avg_pool, conv2d, conv_bn_relu, layer_norm, linear, max_pool, transformer_layer, TransformerLayerConfig,
};
pub use conv_nets::{inception_v3, resnet18, resnext50, squeezenet};
pub use transformers::{bert, dalle, transformer_transducer, vit};

use crate::graph::{Graph, GraphError};

/// Depth preset of a model-zoo graph.
///
/// The paper trains against the full architectures on a GPU; this
/// reproduction runs the whole stack (including the GNN policy) on CPU, so
/// [`ModelScale::Bench`] provides structurally faithful but shallower graphs
/// for tests and quick benchmarks, while [`ModelScale::Paper`] keeps the
/// published depths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelScale {
    /// Published architecture depth.
    Paper,
    /// Reduced depth for CPU-friendly experiments.
    #[default]
    Bench,
}

/// The DNN workloads of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// InceptionV3 image classifier (convolutional).
    InceptionV3,
    /// SqueezeNet 1.1 image classifier (convolutional).
    SqueezeNet,
    /// ResNeXt-50 32x4d image classifier (convolutional, grouped convs).
    ResNext50,
    /// ResNet-18 image classifier (used in the Table 2 motivation study).
    ResNet18,
    /// BERT-base text encoder (transformer).
    Bert,
    /// DALL-E-style decoder-only transformer.
    DallE,
    /// Transformer-Transducer speech model.
    TransformerTransducer,
    /// ViT-base image classifier (transformer).
    Vit,
}

impl ModelKind {
    /// The seven workloads of the paper's main evaluation (Table 3 /
    /// Figure 4), excluding ResNet-18 which only appears in Table 2.
    pub const EVALUATED: &'static [ModelKind] = &[
        ModelKind::InceptionV3,
        ModelKind::SqueezeNet,
        ModelKind::ResNext50,
        ModelKind::Bert,
        ModelKind::DallE,
        ModelKind::TransformerTransducer,
        ModelKind::Vit,
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::InceptionV3 => "InceptionV3",
            ModelKind::SqueezeNet => "SqueezeNet",
            ModelKind::ResNext50 => "ResNext-50",
            ModelKind::ResNet18 => "ResNet-18",
            ModelKind::Bert => "BERT",
            ModelKind::DallE => "DALL-E",
            ModelKind::TransformerTransducer => "T-T",
            ModelKind::Vit => "ViT",
        }
    }

    /// `true` for transformer-style architectures (the paper reports the
    /// largest gains on these).
    pub fn is_transformer(self) -> bool {
        matches!(self, ModelKind::Bert | ModelKind::DallE | ModelKind::TransformerTransducer | ModelKind::Vit)
    }

    /// The default input size used in the evaluation: image height/width for
    /// vision models, sequence length (tokens or frames) for sequence models.
    pub fn default_input_size(self) -> usize {
        match self {
            ModelKind::InceptionV3 => 299,
            ModelKind::SqueezeNet | ModelKind::ResNext50 | ModelKind::ResNet18 | ModelKind::Vit => 224,
            ModelKind::Bert => 128,
            ModelKind::DallE => 64,
            ModelKind::TransformerTransducer => 64,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one model-zoo graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Which architecture to build.
    pub kind: ModelKind,
    /// Depth preset.
    pub scale: ModelScale,
    /// Image size or sequence length (see [`ModelKind::default_input_size`]).
    pub input_size: usize,
}

impl ModelConfig {
    /// Configuration with the paper's default input size at the given scale.
    pub fn new(kind: ModelKind, scale: ModelScale) -> Self {
        Self { kind, scale, input_size: kind.default_input_size() }
    }

    /// Returns a copy with a different input size (used by the Figure 7
    /// tensor-shape generalisation experiment).
    pub fn with_input_size(mut self, input_size: usize) -> Self {
        self.input_size = input_size;
        self
    }

    /// Builds the operator graph.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures, which indicate an invalid
    /// `input_size` for the chosen architecture.
    pub fn build(&self) -> Result<Graph, GraphError> {
        match self.kind {
            ModelKind::InceptionV3 => inception_v3(self.input_size, self.scale),
            ModelKind::SqueezeNet => squeezenet(self.input_size, self.scale),
            ModelKind::ResNext50 => resnext50(self.input_size, self.scale),
            ModelKind::ResNet18 => resnet18(self.input_size, self.scale),
            ModelKind::Bert => bert(self.input_size, self.scale),
            ModelKind::DallE => dalle(self.input_size, self.scale),
            ModelKind::TransformerTransducer => transformer_transducer(self.input_size, self.scale),
            ModelKind::Vit => vit(self.input_size, self.scale),
        }
    }
}

/// Builds a model with default input size.
///
/// # Errors
///
/// Propagates graph-construction errors from the builder.
pub fn build_model(kind: ModelKind, scale: ModelScale) -> Result<Graph, GraphError> {
    ModelConfig::new(kind, scale).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_evaluated_model_builds_at_bench_scale() {
        for &kind in ModelKind::EVALUATED {
            let g = build_model(kind, ModelScale::Bench).unwrap();
            assert!(g.validate().is_ok(), "{kind} failed validation");
            assert!(g.num_nodes() > 20, "{kind} suspiciously small: {}", g.num_nodes());
        }
    }

    #[test]
    fn transformer_flag_matches_table3() {
        assert!(ModelKind::Bert.is_transformer());
        assert!(ModelKind::Vit.is_transformer());
        assert!(!ModelKind::InceptionV3.is_transformer());
        assert!(!ModelKind::SqueezeNet.is_transformer());
    }

    #[test]
    fn evaluated_list_has_seven_models() {
        assert_eq!(ModelKind::EVALUATED.len(), 7);
    }

    #[test]
    fn config_with_input_size() {
        let cfg = ModelConfig::new(ModelKind::Bert, ModelScale::Bench).with_input_size(256);
        assert_eq!(cfg.input_size, 256);
        assert!(cfg.build().is_ok());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ModelKind::TransformerTransducer.to_string(), "T-T");
        assert_eq!(ModelKind::ResNext50.to_string(), "ResNext-50");
    }
}
