//! Convolutional members of the model zoo: InceptionV3, SqueezeNet,
//! ResNeXt-50 and ResNet-18.
//!
//! The builders construct operator graphs with realistic channel widths and
//! spatial shapes; weights are structural placeholders (the optimisers only
//! inspect graph structure and tensor shapes, never values).

use crate::graph::{Graph, GraphError, TensorRef};
use crate::op::{OpAttributes, OpKind, Padding};

use super::common::{avg_pool, conv2d, conv_bn_relu, linear, max_pool, ts};
use super::ModelScale;

/// Builds InceptionV3 (Szegedy et al., 2016) for a square input image.
///
/// At [`ModelScale::Paper`] the graph contains the stem, 3 Inception-A,
/// a grid reduction, 4 Inception-B, a second reduction and 2 Inception-C
/// blocks; at [`ModelScale::Bench`] one block of each type is kept.
pub fn inception_v3(image_size: usize, scale: ModelScale) -> Result<Graph, GraphError> {
    let mut g = Graph::new();
    let x = g.add_input(ts(&[1, 3, image_size, image_size]));

    // Stem.
    let mut h = conv_bn_relu(&mut g, x.into(), 3, 32, [3, 3], [2, 2], Padding::Valid, 1)?;
    h = conv_bn_relu(&mut g, h, 32, 32, [3, 3], [1, 1], Padding::Valid, 1)?;
    h = conv_bn_relu(&mut g, h, 32, 64, [3, 3], [1, 1], Padding::Same, 1)?;
    h = max_pool(&mut g, h, [3, 3], [2, 2], Padding::Valid)?;
    h = conv_bn_relu(&mut g, h, 64, 80, [1, 1], [1, 1], Padding::Valid, 1)?;
    h = conv_bn_relu(&mut g, h, 80, 192, [3, 3], [1, 1], Padding::Valid, 1)?;
    h = max_pool(&mut g, h, [3, 3], [2, 2], Padding::Valid)?;

    let (n_a, n_b, n_c) = match scale {
        ModelScale::Paper => (3, 4, 2),
        ModelScale::Bench => (1, 1, 1),
    };

    // Inception-A blocks (input 192/256/288 channels -> 256/288/288).
    let mut cin = 192;
    for i in 0..n_a {
        let pool_ch = if i == 0 { 32 } else { 64 };
        h = inception_a(&mut g, h, cin, pool_ch)?;
        cin = 224 + pool_ch;
    }

    // Grid reduction A: 288 -> 768 channels, spatial halved.
    h = reduction_a(&mut g, h, cin)?;
    cin = cin + 384 + 96;

    // Inception-B blocks (7x7 factorised convolutions).
    for _ in 0..n_b {
        h = inception_b(&mut g, h, cin)?;
        cin = 768;
    }

    // Grid reduction B.
    h = reduction_b(&mut g, h, cin)?;
    cin = cin + 320 + 192;

    // Inception-C blocks.
    for _ in 0..n_c {
        h = inception_c(&mut g, h, cin)?;
        cin = 2048;
    }

    // Classifier head.
    let pooled = g.add_node(OpKind::GlobalAvgPool, OpAttributes::default(), vec![h])?;
    let flat = g.add_node(OpKind::Flatten, OpAttributes::default(), vec![pooled.into()])?;
    let logits = linear(&mut g, flat.into(), cin, 1000, true)?;
    let probs = g.add_node(OpKind::Softmax, OpAttributes::with_axis(1), vec![logits])?;
    g.mark_output(probs.into());
    Ok(g)
}

fn inception_a(g: &mut Graph, input: TensorRef, cin: usize, pool_ch: usize) -> Result<TensorRef, GraphError> {
    // Branch 1: 1x1.
    let b1 = conv_bn_relu(g, input, cin, 64, [1, 1], [1, 1], Padding::Same, 1)?;
    // Branch 2: 1x1 -> 5x5.
    let b2 = conv_bn_relu(g, input, cin, 48, [1, 1], [1, 1], Padding::Same, 1)?;
    let b2 = conv_bn_relu(g, b2, 48, 64, [5, 5], [1, 1], Padding::Same, 1)?;
    // Branch 3: 1x1 -> 3x3 -> 3x3.
    let b3 = conv_bn_relu(g, input, cin, 64, [1, 1], [1, 1], Padding::Same, 1)?;
    let b3 = conv_bn_relu(g, b3, 64, 96, [3, 3], [1, 1], Padding::Same, 1)?;
    let b3 = conv_bn_relu(g, b3, 96, 96, [3, 3], [1, 1], Padding::Same, 1)?;
    // Branch 4: pool -> 1x1.
    let b4 = avg_pool(g, input, [3, 3], [1, 1], Padding::Same)?;
    let b4 = conv_bn_relu(g, b4, cin, pool_ch, [1, 1], [1, 1], Padding::Same, 1)?;
    let cat = g.add_node(OpKind::Concat, OpAttributes::with_axis(1), vec![b1, b2, b3, b4])?;
    Ok(cat.into())
}

fn reduction_a(g: &mut Graph, input: TensorRef, cin: usize) -> Result<TensorRef, GraphError> {
    let b1 = conv_bn_relu(g, input, cin, 384, [3, 3], [2, 2], Padding::Valid, 1)?;
    let b2 = conv_bn_relu(g, input, cin, 64, [1, 1], [1, 1], Padding::Same, 1)?;
    let b2 = conv_bn_relu(g, b2, 64, 96, [3, 3], [1, 1], Padding::Same, 1)?;
    let b2 = conv_bn_relu(g, b2, 96, 96, [3, 3], [2, 2], Padding::Valid, 1)?;
    let b3 = max_pool(g, input, [3, 3], [2, 2], Padding::Valid)?;
    let cat = g.add_node(OpKind::Concat, OpAttributes::with_axis(1), vec![b1, b2, b3])?;
    Ok(cat.into())
}

fn inception_b(g: &mut Graph, input: TensorRef, cin: usize) -> Result<TensorRef, GraphError> {
    let mid = 160;
    // Branch 1: 1x1.
    let b1 = conv_bn_relu(g, input, cin, 192, [1, 1], [1, 1], Padding::Same, 1)?;
    // Branch 2: 1x1 -> 1x7 -> 7x1.
    let b2 = conv_bn_relu(g, input, cin, mid, [1, 1], [1, 1], Padding::Same, 1)?;
    let b2 = conv_bn_relu(g, b2, mid, mid, [1, 7], [1, 1], Padding::Same, 1)?;
    let b2 = conv_bn_relu(g, b2, mid, 192, [7, 1], [1, 1], Padding::Same, 1)?;
    // Branch 3: 1x1 -> (7x1 -> 1x7) x2.
    let b3 = conv_bn_relu(g, input, cin, mid, [1, 1], [1, 1], Padding::Same, 1)?;
    let b3 = conv_bn_relu(g, b3, mid, mid, [7, 1], [1, 1], Padding::Same, 1)?;
    let b3 = conv_bn_relu(g, b3, mid, mid, [1, 7], [1, 1], Padding::Same, 1)?;
    let b3 = conv_bn_relu(g, b3, mid, mid, [7, 1], [1, 1], Padding::Same, 1)?;
    let b3 = conv_bn_relu(g, b3, mid, 192, [1, 7], [1, 1], Padding::Same, 1)?;
    // Branch 4: pool -> 1x1.
    let b4 = avg_pool(g, input, [3, 3], [1, 1], Padding::Same)?;
    let b4 = conv_bn_relu(g, b4, cin, 192, [1, 1], [1, 1], Padding::Same, 1)?;
    let cat = g.add_node(OpKind::Concat, OpAttributes::with_axis(1), vec![b1, b2, b3, b4])?;
    Ok(cat.into())
}

fn reduction_b(g: &mut Graph, input: TensorRef, cin: usize) -> Result<TensorRef, GraphError> {
    let b1 = conv_bn_relu(g, input, cin, 192, [1, 1], [1, 1], Padding::Same, 1)?;
    let b1 = conv_bn_relu(g, b1, 192, 320, [3, 3], [2, 2], Padding::Valid, 1)?;
    let b2 = conv_bn_relu(g, input, cin, 192, [1, 1], [1, 1], Padding::Same, 1)?;
    let b2 = conv_bn_relu(g, b2, 192, 192, [1, 7], [1, 1], Padding::Same, 1)?;
    let b2 = conv_bn_relu(g, b2, 192, 192, [7, 1], [1, 1], Padding::Same, 1)?;
    let b2 = conv_bn_relu(g, b2, 192, 192, [3, 3], [2, 2], Padding::Valid, 1)?;
    let b3 = max_pool(g, input, [3, 3], [2, 2], Padding::Valid)?;
    let cat = g.add_node(OpKind::Concat, OpAttributes::with_axis(1), vec![b1, b2, b3])?;
    Ok(cat.into())
}

fn inception_c(g: &mut Graph, input: TensorRef, cin: usize) -> Result<TensorRef, GraphError> {
    // Branch 1: 1x1.
    let b1 = conv_bn_relu(g, input, cin, 320, [1, 1], [1, 1], Padding::Same, 1)?;
    // Branch 2: 1x1 then parallel 1x3 and 3x1, concatenated.
    let b2 = conv_bn_relu(g, input, cin, 384, [1, 1], [1, 1], Padding::Same, 1)?;
    let b2a = conv_bn_relu(g, b2, 384, 384, [1, 3], [1, 1], Padding::Same, 1)?;
    let b2b = conv_bn_relu(g, b2, 384, 384, [3, 1], [1, 1], Padding::Same, 1)?;
    let b2cat = g.add_node(OpKind::Concat, OpAttributes::with_axis(1), vec![b2a, b2b])?;
    // Branch 3: 1x1 -> 3x3 then parallel 1x3 and 3x1.
    let b3 = conv_bn_relu(g, input, cin, 448, [1, 1], [1, 1], Padding::Same, 1)?;
    let b3 = conv_bn_relu(g, b3, 448, 384, [3, 3], [1, 1], Padding::Same, 1)?;
    let b3a = conv_bn_relu(g, b3, 384, 384, [1, 3], [1, 1], Padding::Same, 1)?;
    let b3b = conv_bn_relu(g, b3, 384, 384, [3, 1], [1, 1], Padding::Same, 1)?;
    let b3cat = g.add_node(OpKind::Concat, OpAttributes::with_axis(1), vec![b3a, b3b])?;
    // Branch 4: pool -> 1x1.
    let b4 = avg_pool(g, input, [3, 3], [1, 1], Padding::Same)?;
    let b4 = conv_bn_relu(g, b4, cin, 192, [1, 1], [1, 1], Padding::Same, 1)?;
    let cat =
        g.add_node(OpKind::Concat, OpAttributes::with_axis(1), vec![b1, b2cat.into(), b3cat.into(), b4])?;
    Ok(cat.into())
}

/// Builds SqueezeNet 1.1 (Iandola et al., 2016).
pub fn squeezenet(image_size: usize, scale: ModelScale) -> Result<Graph, GraphError> {
    let mut g = Graph::new();
    let x = g.add_input(ts(&[1, 3, image_size, image_size]));

    let mut h = conv_bn_relu(&mut g, x.into(), 3, 64, [3, 3], [2, 2], Padding::Valid, 1)?;
    h = max_pool(&mut g, h, [3, 3], [2, 2], Padding::Valid)?;

    // (squeeze channels, expand channels) per fire module, grouped by pooling stage.
    let stages: Vec<Vec<(usize, usize)>> = match scale {
        ModelScale::Paper => vec![
            vec![(16, 64), (16, 64)],
            vec![(32, 128), (32, 128)],
            vec![(48, 192), (48, 192), (64, 256), (64, 256)],
        ],
        ModelScale::Bench => vec![vec![(16, 64)], vec![(32, 128)]],
    };

    let mut cin = 64;
    for (si, stage) in stages.iter().enumerate() {
        if si > 0 {
            h = max_pool(&mut g, h, [3, 3], [2, 2], Padding::Valid)?;
        }
        for &(squeeze, expand) in stage {
            h = fire_module(&mut g, h, cin, squeeze, expand)?;
            cin = expand * 2;
        }
    }

    // Final 1x1 classifier conv.
    let conv_final = conv2d(&mut g, h, cin, 1000, [1, 1], [1, 1], Padding::Same)?;
    let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![conv_final])?;
    let pooled = g.add_node(OpKind::GlobalAvgPool, OpAttributes::default(), vec![relu.into()])?;
    let flat = g.add_node(OpKind::Flatten, OpAttributes::default(), vec![pooled.into()])?;
    let probs = g.add_node(OpKind::Softmax, OpAttributes::with_axis(1), vec![flat.into()])?;
    g.mark_output(probs.into());
    Ok(g)
}

fn fire_module(
    g: &mut Graph,
    input: TensorRef,
    cin: usize,
    squeeze: usize,
    expand: usize,
) -> Result<TensorRef, GraphError> {
    let s = conv_bn_relu(g, input, cin, squeeze, [1, 1], [1, 1], Padding::Same, 1)?;
    let e1 = conv_bn_relu(g, s, squeeze, expand, [1, 1], [1, 1], Padding::Same, 1)?;
    let e3 = conv_bn_relu(g, s, squeeze, expand, [3, 3], [1, 1], Padding::Same, 1)?;
    let cat = g.add_node(OpKind::Concat, OpAttributes::with_axis(1), vec![e1, e3])?;
    Ok(cat.into())
}

/// Builds ResNeXt-50 (32x4d) — bottleneck blocks with 32-way grouped
/// convolutions.
pub fn resnext50(image_size: usize, scale: ModelScale) -> Result<Graph, GraphError> {
    let blocks = match scale {
        ModelScale::Paper => vec![3, 4, 6, 3],
        ModelScale::Bench => vec![1, 1, 1, 1],
    };
    residual_net(image_size, &blocks, true)
}

/// Builds ResNet-18 — plain basic residual blocks (used by the Table 2
/// motivation experiment comparing PET and TASO).
pub fn resnet18(image_size: usize, scale: ModelScale) -> Result<Graph, GraphError> {
    let blocks = match scale {
        ModelScale::Paper => vec![2, 2, 2, 2],
        ModelScale::Bench => vec![1, 1, 1, 1],
    };
    basic_residual_net(image_size, &blocks)
}

fn residual_net(image_size: usize, blocks: &[usize], grouped: bool) -> Result<Graph, GraphError> {
    let mut g = Graph::new();
    let x = g.add_input(ts(&[1, 3, image_size, image_size]));
    let mut h = conv_bn_relu(&mut g, x.into(), 3, 64, [7, 7], [2, 2], Padding::Same, 1)?;
    h = max_pool(&mut g, h, [3, 3], [2, 2], Padding::Same)?;

    let mut cin = 64;
    let widths = [128usize, 256, 512, 1024];
    let outs = [256usize, 512, 1024, 2048];
    for (stage, &n) in blocks.iter().enumerate() {
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { [2, 2] } else { [1, 1] };
            h = bottleneck_block(&mut g, h, cin, widths[stage], outs[stage], stride, grouped)?;
            cin = outs[stage];
        }
    }

    let pooled = g.add_node(OpKind::GlobalAvgPool, OpAttributes::default(), vec![h])?;
    let flat = g.add_node(OpKind::Flatten, OpAttributes::default(), vec![pooled.into()])?;
    let logits = linear(&mut g, flat.into(), cin, 1000, true)?;
    let probs = g.add_node(OpKind::Softmax, OpAttributes::with_axis(1), vec![logits])?;
    g.mark_output(probs.into());
    Ok(g)
}

fn bottleneck_block(
    g: &mut Graph,
    input: TensorRef,
    cin: usize,
    width: usize,
    cout: usize,
    stride: [usize; 2],
    grouped: bool,
) -> Result<TensorRef, GraphError> {
    let groups = if grouped { 32 } else { 1 };
    let a = conv_bn_relu(g, input, cin, width, [1, 1], [1, 1], Padding::Same, 1)?;
    let b = conv_bn_relu(g, a, width, width, [3, 3], stride, Padding::Same, groups)?;
    // Final 1x1 conv + BN without the activation (applied after the residual add).
    let w = g.add_weight(ts(&[cout, width, 1, 1]));
    let conv = g.add_node(
        OpKind::Conv2d,
        OpAttributes::conv2d([1, 1], [1, 1], Padding::Same, 1),
        vec![b, w.into()],
    )?;
    let scale = g.add_weight(ts(&[cout, 1, 1]));
    let bias = g.add_weight(ts(&[cout, 1, 1]));
    let bn =
        g.add_node(OpKind::BatchNorm, OpAttributes::default(), vec![conv.into(), scale.into(), bias.into()])?;

    // Projection shortcut whenever the shape changes.
    let shortcut = if cin != cout || stride != [1, 1] {
        let w = g.add_weight(ts(&[cout, cin, 1, 1]));
        let conv = g.add_node(
            OpKind::Conv2d,
            OpAttributes::conv2d([1, 1], stride, Padding::Same, 1),
            vec![input, w.into()],
        )?;
        TensorRef::from(conv)
    } else {
        input
    };
    let add = g.add_node(OpKind::Add, OpAttributes::default(), vec![bn.into(), shortcut])?;
    let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![add.into()])?;
    Ok(relu.into())
}

fn basic_residual_net(image_size: usize, blocks: &[usize]) -> Result<Graph, GraphError> {
    let mut g = Graph::new();
    let x = g.add_input(ts(&[1, 3, image_size, image_size]));
    let mut h = conv_bn_relu(&mut g, x.into(), 3, 64, [7, 7], [2, 2], Padding::Same, 1)?;
    h = max_pool(&mut g, h, [3, 3], [2, 2], Padding::Same)?;

    let mut cin = 64;
    let widths = [64usize, 128, 256, 512];
    for (stage, &n) in blocks.iter().enumerate() {
        for b in 0..n {
            let stride = if stage > 0 && b == 0 { [2, 2] } else { [1, 1] };
            h = basic_block(&mut g, h, cin, widths[stage], stride)?;
            cin = widths[stage];
        }
    }

    let pooled = g.add_node(OpKind::GlobalAvgPool, OpAttributes::default(), vec![h])?;
    let flat = g.add_node(OpKind::Flatten, OpAttributes::default(), vec![pooled.into()])?;
    let logits = linear(&mut g, flat.into(), cin, 1000, true)?;
    let probs = g.add_node(OpKind::Softmax, OpAttributes::with_axis(1), vec![logits])?;
    g.mark_output(probs.into());
    Ok(g)
}

fn basic_block(
    g: &mut Graph,
    input: TensorRef,
    cin: usize,
    cout: usize,
    stride: [usize; 2],
) -> Result<TensorRef, GraphError> {
    let a = conv_bn_relu(g, input, cin, cout, [3, 3], stride, Padding::Same, 1)?;
    let w = g.add_weight(ts(&[cout, cout, 3, 3]));
    let conv = g.add_node(
        OpKind::Conv2d,
        OpAttributes::conv2d([3, 3], [1, 1], Padding::Same, 1),
        vec![a, w.into()],
    )?;
    let scale = g.add_weight(ts(&[cout, 1, 1]));
    let bias = g.add_weight(ts(&[cout, 1, 1]));
    let bn =
        g.add_node(OpKind::BatchNorm, OpAttributes::default(), vec![conv.into(), scale.into(), bias.into()])?;
    let shortcut = if cin != cout || stride != [1, 1] {
        let w = g.add_weight(ts(&[cout, cin, 1, 1]));
        let conv = g.add_node(
            OpKind::Conv2d,
            OpAttributes::conv2d([1, 1], stride, Padding::Same, 1),
            vec![input, w.into()],
        )?;
        TensorRef::from(conv)
    } else {
        input
    };
    let add = g.add_node(OpKind::Add, OpAttributes::default(), vec![bn.into(), shortcut])?;
    let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![add.into()])?;
    Ok(relu.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inception_v3_builds_and_validates() {
        let g = inception_v3(299, ModelScale::Bench).unwrap();
        assert!(g.validate().is_ok());
        assert!(g.count_op(OpKind::Conv2d) >= 20, "got {}", g.count_op(OpKind::Conv2d));
        assert!(g.count_op(OpKind::Concat) >= 4);
    }

    #[test]
    fn inception_v3_paper_scale_is_larger() {
        let bench = inception_v3(299, ModelScale::Bench).unwrap();
        let paper = inception_v3(299, ModelScale::Paper).unwrap();
        assert!(paper.num_nodes() > bench.num_nodes());
        assert!(paper.validate().is_ok());
    }

    #[test]
    fn squeezenet_builds_and_validates() {
        let g = squeezenet(224, ModelScale::Paper).unwrap();
        assert!(g.validate().is_ok());
        // Eight fire modules, each with 3 convolutions, plus stem and head.
        assert!(g.count_op(OpKind::Conv2d) >= 26);
        assert_eq!(g.count_op(OpKind::Input), 1);
    }

    #[test]
    fn resnext50_uses_grouped_convolutions() {
        let g = resnext50(224, ModelScale::Bench).unwrap();
        assert!(g.validate().is_ok());
        let grouped = g.iter().filter(|(_, n)| n.op == OpKind::Conv2d && n.attrs.groups == 32).count();
        assert!(grouped >= 4, "expected grouped convolutions, found {grouped}");
    }

    #[test]
    fn resnet18_builds_and_validates() {
        let g = resnet18(224, ModelScale::Paper).unwrap();
        assert!(g.validate().is_ok());
        assert!(g.count_op(OpKind::Conv2d) >= 17);
    }

    #[test]
    fn input_size_variations_build() {
        // Figure 7 generalises InceptionV3 across input sizes.
        for size in [225, 250, 299] {
            let g = inception_v3(size, ModelScale::Bench).unwrap();
            assert!(g.validate().is_ok(), "failed for size {size}");
        }
    }
}
