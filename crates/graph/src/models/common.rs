//! Shared building blocks for the model zoo (convolution stacks and
//! transformer layers).

use crate::graph::{Graph, GraphError, TensorRef};
use crate::op::{OpAttributes, OpKind, Padding};
use crate::shape::TensorShape;

/// Convenience: a `[dims]` tensor shape.
pub(crate) fn ts(dims: &[usize]) -> TensorShape {
    TensorShape::new(dims.to_vec())
}

/// Adds `Conv2d -> BatchNorm -> Relu` and returns the activation tensor.
///
/// `input` must be an NCHW tensor with `cin` channels.
#[allow(clippy::too_many_arguments)]
pub fn conv_bn_relu(
    g: &mut Graph,
    input: TensorRef,
    cin: usize,
    cout: usize,
    kernel: [usize; 2],
    stride: [usize; 2],
    padding: Padding,
    groups: usize,
) -> Result<TensorRef, GraphError> {
    let w = g.add_weight(ts(&[cout, cin / groups.max(1), kernel[0], kernel[1]]));
    let conv = g.add_node(
        OpKind::Conv2d,
        OpAttributes::conv2d(kernel, stride, padding, groups),
        vec![input, w.into()],
    )?;
    let scale = g.add_weight(ts(&[cout, 1, 1]));
    let bias = g.add_weight(ts(&[cout, 1, 1]));
    let bn =
        g.add_node(OpKind::BatchNorm, OpAttributes::default(), vec![conv.into(), scale.into(), bias.into()])?;
    let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![bn.into()])?;
    Ok(relu.into())
}

/// Adds a plain convolution (no normalisation or activation).
pub fn conv2d(
    g: &mut Graph,
    input: TensorRef,
    cin: usize,
    cout: usize,
    kernel: [usize; 2],
    stride: [usize; 2],
    padding: Padding,
) -> Result<TensorRef, GraphError> {
    let w = g.add_weight(ts(&[cout, cin, kernel[0], kernel[1]]));
    let conv =
        g.add_node(OpKind::Conv2d, OpAttributes::conv2d(kernel, stride, padding, 1), vec![input, w.into()])?;
    Ok(conv.into())
}

/// Adds a max-pool layer.
pub fn max_pool(
    g: &mut Graph,
    input: TensorRef,
    kernel: [usize; 2],
    stride: [usize; 2],
    padding: Padding,
) -> Result<TensorRef, GraphError> {
    let pool = g.add_node(OpKind::MaxPool2d, OpAttributes::pool(kernel, stride, padding), vec![input])?;
    Ok(pool.into())
}

/// Adds an average-pool layer.
pub fn avg_pool(
    g: &mut Graph,
    input: TensorRef,
    kernel: [usize; 2],
    stride: [usize; 2],
    padding: Padding,
) -> Result<TensorRef, GraphError> {
    let pool = g.add_node(OpKind::AvgPool2d, OpAttributes::pool(kernel, stride, padding), vec![input])?;
    Ok(pool.into())
}

/// Adds a dense layer `y = x W (+ b)` on a rank-2 or rank-3 tensor whose last
/// dimension is `in_dim`.
pub fn linear(
    g: &mut Graph,
    input: TensorRef,
    in_dim: usize,
    out_dim: usize,
    bias: bool,
) -> Result<TensorRef, GraphError> {
    let w = g.add_weight(ts(&[in_dim, out_dim]));
    let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![input, w.into()])?;
    if bias {
        let b = g.add_weight(ts(&[out_dim]));
        let add = g.add_node(OpKind::Add, OpAttributes::default(), vec![mm.into(), b.into()])?;
        Ok(add.into())
    } else {
        Ok(mm.into())
    }
}

/// Adds a layer-norm over the last dimension.
pub fn layer_norm(g: &mut Graph, input: TensorRef, dim: usize) -> Result<TensorRef, GraphError> {
    let scale = g.add_weight(ts(&[dim]));
    let bias = g.add_weight(ts(&[dim]));
    let ln =
        g.add_node(OpKind::LayerNorm, OpAttributes::default(), vec![input, scale.into(), bias.into()])?;
    Ok(ln.into())
}

/// Configuration of one multi-head self-attention + feed-forward transformer
/// encoder layer.
#[derive(Debug, Clone, Copy)]
pub struct TransformerLayerConfig {
    /// Sequence length.
    pub seq_len: usize,
    /// Model (embedding) dimension.
    pub d_model: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Hidden dimension of the feed-forward block.
    pub d_ff: usize,
    /// Use GELU (transformer-default) rather than ReLU in the FFN.
    pub gelu: bool,
}

/// Adds one pre-norm transformer encoder layer operating on a `[1, seq, d]`
/// tensor and returns the output tensor of the same shape.
pub fn transformer_layer(
    g: &mut Graph,
    input: TensorRef,
    cfg: &TransformerLayerConfig,
) -> Result<TensorRef, GraphError> {
    let TransformerLayerConfig { seq_len, d_model, num_heads, d_ff, gelu } = *cfg;
    let d_head = d_model / num_heads;
    assert_eq!(d_head * num_heads, d_model, "d_model must be divisible by num_heads");

    // --- Multi-head self-attention ---
    let normed = layer_norm(g, input, d_model)?;
    let q = linear(g, normed, d_model, d_model, true)?;
    let k = linear(g, normed, d_model, d_model, true)?;
    let v = linear(g, normed, d_model, d_model, true)?;

    // [1, s, d] -> [s, h, dh] -> [h, s, dh]
    let to_heads = |g: &mut Graph, x: TensorRef| -> Result<TensorRef, GraphError> {
        let r =
            g.add_node(OpKind::Reshape, OpAttributes::reshape(vec![seq_len, num_heads, d_head]), vec![x])?;
        let t = g.add_node(OpKind::Transpose, OpAttributes::transpose(vec![1, 0, 2]), vec![r.into()])?;
        Ok(t.into())
    };
    let qh = to_heads(g, q)?;
    let kh = to_heads(g, k)?;
    let vh = to_heads(g, v)?;

    // scores = Q K^T / sqrt(dh)
    let kt = g.add_node(OpKind::Transpose, OpAttributes::transpose(vec![0, 2, 1]), vec![kh])?;
    let scores = g.add_node(OpKind::BatchMatMul, OpAttributes::default(), vec![qh, kt.into()])?;
    let scale = g.add_constant(ts(&[1]));
    let scaled = g.add_node(OpKind::Mul, OpAttributes::default(), vec![scores.into(), scale.into()])?;
    let probs = g.add_node(OpKind::Softmax, OpAttributes::with_axis(2), vec![scaled.into()])?;
    let ctx = g.add_node(OpKind::BatchMatMul, OpAttributes::default(), vec![probs.into(), vh])?;

    // [h, s, dh] -> [s, h, dh] -> [1, s, d]
    let back = g.add_node(OpKind::Transpose, OpAttributes::transpose(vec![1, 0, 2]), vec![ctx.into()])?;
    let merged =
        g.add_node(OpKind::Reshape, OpAttributes::reshape(vec![1, seq_len, d_model]), vec![back.into()])?;
    let proj = linear(g, merged.into(), d_model, d_model, true)?;
    let attn_out = g.add_node(OpKind::Add, OpAttributes::default(), vec![input, proj])?;

    // --- Feed-forward network ---
    let normed2 = layer_norm(g, attn_out.into(), d_model)?;
    let ff1 = linear(g, normed2, d_model, d_ff, true)?;
    let act_kind = if gelu { OpKind::Gelu } else { OpKind::Relu };
    let act = g.add_node(act_kind, OpAttributes::default(), vec![ff1])?;
    let ff2 = linear(g, act.into(), d_ff, d_model, true)?;
    let out = g.add_node(OpKind::Add, OpAttributes::default(), vec![attn_out.into(), ff2])?;
    Ok(out.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_bn_relu_shapes() {
        let mut g = Graph::new();
        let x = g.add_input(ts(&[1, 3, 32, 32]));
        let y = conv_bn_relu(&mut g, x.into(), 3, 16, [3, 3], [2, 2], Padding::Same, 1).unwrap();
        g.mark_output(y);
        assert!(g.validate().is_ok());
        assert_eq!(g.tensor_shape(y).unwrap().dims(), &[1, 16, 16, 16]);
    }

    #[test]
    fn linear_with_bias_shapes() {
        let mut g = Graph::new();
        let x = g.add_input(ts(&[1, 16, 64]));
        let y = linear(&mut g, x.into(), 64, 128, true).unwrap();
        g.mark_output(y);
        assert!(g.validate().is_ok());
        assert_eq!(g.tensor_shape(y).unwrap().dims(), &[1, 16, 128]);
    }

    #[test]
    fn transformer_layer_preserves_shape() {
        let mut g = Graph::new();
        let x = g.add_input(ts(&[1, 32, 64]));
        let cfg = TransformerLayerConfig { seq_len: 32, d_model: 64, num_heads: 4, d_ff: 256, gelu: true };
        let y = transformer_layer(&mut g, x.into(), &cfg).unwrap();
        g.mark_output(y);
        assert!(g.validate().is_ok());
        assert_eq!(g.tensor_shape(y).unwrap().dims(), &[1, 32, 64]);
        // A transformer layer should contain batched matmuls and a softmax.
        assert!(g.count_op(OpKind::BatchMatMul) >= 2);
        assert_eq!(g.count_op(OpKind::Softmax), 1);
    }
}
