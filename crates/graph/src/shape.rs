//! Tensor shapes carried on graph edges.
//!
//! The paper encodes each edge's tensor shape (padded to rank 4 and
//! normalised by a constant `M = 4096`) as the edge attribute fed to the
//! GNN; [`TensorShape::padded4`] provides exactly that encoding.

use std::fmt;

/// The shape of a tensor flowing along a graph edge.
///
/// # Examples
///
/// ```
/// use xrlflow_graph::TensorShape;
///
/// let s = TensorShape::new(vec![1, 3, 224, 224]);
/// assert_eq!(s.numel(), 1 * 3 * 224 * 224);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TensorShape(Vec<usize>);

impl TensorShape {
    /// Creates a shape from its dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        Self(dims)
    }

    /// A scalar shape (rank 0).
    pub fn scalar() -> Self {
        Self(Vec::new())
    }

    /// The dimensions of this shape.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Total number of elements, or `None` when the product overflows
    /// `usize` — the overflow-safe variant used when validating untrusted
    /// shapes at the graph ingestion boundary.
    pub fn checked_numel(&self) -> Option<usize> {
        self.0.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d))
    }

    /// Size of the given dimension.
    ///
    /// # Panics
    ///
    /// Panics if the dimension is out of range.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// The shape padded with leading ones to rank 4, as the paper does for
    /// edge attributes ("for tensors whose rank is less than 4, zeros are
    /// padded to leading dimensions"; we use the dimensions themselves with
    /// leading zero padding).
    pub fn padded4(&self) -> [f32; 4] {
        let mut out = [0.0f32; 4];
        let dims = &self.0;
        let start = 4usize.saturating_sub(dims.len());
        for (i, &d) in dims.iter().rev().enumerate() {
            if 3 >= i {
                out[3 - i] = d as f32;
            }
        }
        let _ = start;
        out
    }

    /// Returns a new shape with the two given axes swapped.
    ///
    /// # Panics
    ///
    /// Panics if either axis is out of range.
    pub fn swap(&self, a: usize, b: usize) -> Self {
        let mut dims = self.0.clone();
        dims.swap(a, b);
        Self(dims)
    }

    /// Returns a new shape permuted by `perm`, or `None` when `perm` is not
    /// a permutation of `0..rank` — the fallible variant shape inference
    /// uses so untrusted `Transpose` attributes surface as typed errors.
    pub fn try_permute(&self, perm: &[usize]) -> Option<Self> {
        if perm.len() != self.rank() {
            return None;
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return None;
            }
            seen[p] = true;
        }
        Some(Self(perm.iter().map(|&p| self.0[p]).collect()))
    }

    /// Returns a new shape permuted by `perm`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank`; use
    /// [`TensorShape::try_permute`] for untrusted input.
    pub fn permute(&self, perm: &[usize]) -> Self {
        self.try_permute(perm).unwrap_or_else(|| panic!("invalid permutation {:?} of {self}", perm))
    }

    /// Returns `true` when two shapes are broadcast-compatible in the NumPy
    /// sense (trailing dimensions equal or one of them is 1).
    pub fn broadcast_compatible(&self, other: &TensorShape) -> bool {
        let a = &self.0;
        let b = &other.0;
        let n = a.len().max(b.len());
        for i in 0..n {
            let da = if i < a.len() { a[a.len() - 1 - i] } else { 1 };
            let db = if i < b.len() { b[b.len() - 1 - i] } else { 1 };
            if da != db && da != 1 && db != 1 {
                return false;
            }
        }
        true
    }

    /// Broadcasts two shapes together, returning the result shape.
    ///
    /// Returns `None` if the shapes are not broadcast-compatible.
    pub fn broadcast(&self, other: &TensorShape) -> Option<TensorShape> {
        if !self.broadcast_compatible(other) {
            return None;
        }
        let a = &self.0;
        let b = &other.0;
        let n = a.len().max(b.len());
        let mut out = vec![0usize; n];
        for i in 0..n {
            let da = if i < a.len() { a[a.len() - 1 - i] } else { 1 };
            let db = if i < b.len() { b[b.len() - 1 - i] } else { 1 };
            out[n - 1 - i] = da.max(db);
        }
        Some(TensorShape(out))
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for TensorShape {
    fn from(dims: Vec<usize>) -> Self {
        Self(dims)
    }
}

impl From<&[usize]> for TensorShape {
    fn from(dims: &[usize]) -> Self {
        Self(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = TensorShape::new(vec![2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
        assert_eq!(TensorShape::scalar().numel(), 1);
    }

    #[test]
    fn padded4_pads_leading() {
        let s = TensorShape::new(vec![64, 128]);
        assert_eq!(s.padded4(), [0.0, 0.0, 64.0, 128.0]);
        let f = TensorShape::new(vec![1, 3, 256, 256]);
        assert_eq!(f.padded4(), [1.0, 3.0, 256.0, 256.0]);
    }

    #[test]
    fn permute_and_swap() {
        let s = TensorShape::new(vec![1, 2, 3, 4]);
        assert_eq!(s.swap(1, 3).dims(), &[1, 4, 3, 2]);
        assert_eq!(s.permute(&[0, 2, 1, 3]).dims(), &[1, 3, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn permute_rejects_bad_perm() {
        TensorShape::new(vec![1, 2]).permute(&[0, 0]);
    }

    #[test]
    fn broadcasting() {
        let a = TensorShape::new(vec![4, 1, 3]);
        let b = TensorShape::new(vec![2, 3]);
        assert!(a.broadcast_compatible(&b));
        assert_eq!(a.broadcast(&b).unwrap().dims(), &[4, 2, 3]);
        let c = TensorShape::new(vec![5, 3]);
        let d = TensorShape::new(vec![4, 3]);
        assert!(!c.broadcast_compatible(&d));
        assert!(c.broadcast(&d).is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(TensorShape::new(vec![1, 3]).to_string(), "[1, 3]");
        assert_eq!(TensorShape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let s: TensorShape = vec![2, 2].into();
        assert_eq!(s.rank(), 2);
        let t: TensorShape = [3usize, 4].as_slice().into();
        assert_eq!(t.numel(), 12);
    }
}
