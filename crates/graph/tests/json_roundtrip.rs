//! Round-trip property tests for the JSON interchange format over the whole
//! model zoo, plus negative tests proving malformed documents surface as
//! typed [`GraphError`]s and never panics.

use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_graph::{Graph, GraphError};

const ALL_MODELS: &[ModelKind] = &[
    ModelKind::InceptionV3,
    ModelKind::SqueezeNet,
    ModelKind::ResNext50,
    ModelKind::ResNet18,
    ModelKind::Bert,
    ModelKind::DallE,
    ModelKind::TransformerTransducer,
    ModelKind::Vit,
];

#[test]
fn every_zoo_model_round_trips_exactly() {
    for &kind in ALL_MODELS {
        let graph = build_model(kind, ModelScale::Bench).unwrap();
        let text = graph.to_json();
        let back = Graph::from_json(&text).unwrap_or_else(|e| panic!("{kind:?} failed to re-import: {e}"));
        assert_eq!(back.canonical_hash(), graph.canonical_hash(), "{kind:?}: canonical hash changed");
        assert_eq!(back.num_nodes(), graph.num_nodes(), "{kind:?}: node count changed");
        assert_eq!(back.num_edges(), graph.num_edges(), "{kind:?}: edge count changed");
        assert_eq!(back.outputs(), graph.outputs(), "{kind:?}: output refs changed");
        // A second trip through text is byte-identical (the format is a
        // stable cache key, not just semantically faithful).
        assert_eq!(back.to_json(), text, "{kind:?}: export not stable under round trip");
    }
}

#[test]
fn paper_scale_model_round_trips() {
    // One paper-scale graph keeps the big-graph path honest without making
    // the suite slow.
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Paper).unwrap();
    let back = Graph::from_json(&graph.to_json()).unwrap();
    assert_eq!(back.canonical_hash(), graph.canonical_hash());
    assert_eq!(back.num_nodes(), graph.num_nodes());
}

#[test]
fn truncations_of_a_real_model_never_panic() {
    let text = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap().to_json();
    // Every prefix would be slow; sample a spread of cut points.
    let step = (text.len() / 64).max(1);
    for cut in (0..text.len()).step_by(step) {
        match Graph::from_json(&text[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("truncation at {cut} unexpectedly imported"),
        }
    }
}

#[test]
fn wrong_version_is_a_typed_error() {
    let text = build_model(ModelKind::Bert, ModelScale::Bench).unwrap().to_json();
    let bumped = text.replacen("\"version\": 1", "\"version\": 2", 1);
    match Graph::from_json(&bumped) {
        Err(GraphError::Parse(message)) => assert!(message.contains("version"), "got {message:?}"),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn corrupted_documents_are_typed_errors() {
    let docs = [
        // Unknown operator name.
        r#"{"format": "xrlflow-graph", "version": 1, "nodes": [
            {"op": "Nope", "outputs": [[1]]}], "outputs": [[0, 0]]}"#,
        // Dangling input reference.
        r#"{"format": "xrlflow-graph", "version": 1, "nodes": [
            {"op": "Relu", "inputs": [[5, 0]], "outputs": [[1]]}], "outputs": [[0, 0]]}"#,
        // Two-node cycle.
        r#"{"format": "xrlflow-graph", "version": 1, "nodes": [
            {"op": "Relu", "inputs": [[1, 0]], "outputs": [[1]]},
            {"op": "Relu", "inputs": [[0, 0]], "outputs": [[1]]}], "outputs": [[1, 0]]}"#,
        // Stored shape disagreeing with inference.
        r#"{"format": "xrlflow-graph", "version": 1, "nodes": [
            {"op": "Input", "outputs": [[1, 8]]},
            {"op": "Relu", "inputs": [[0, 0]], "outputs": [[1, 9]]}], "outputs": [[1, 0]]}"#,
        // Dangling graph output.
        r#"{"format": "xrlflow-graph", "version": 1, "nodes": [
            {"op": "Input", "outputs": [[1, 8]]}], "outputs": [[4, 0]]}"#,
        // Negative node index.
        r#"{"format": "xrlflow-graph", "version": 1, "nodes": [
            {"op": "Input", "outputs": [[1, 8]]},
            {"op": "Relu", "inputs": [[-1, 0]], "outputs": [[1, 8]]}], "outputs": [[1, 0]]}"#,
        // Shape product overflowing usize.
        r#"{"format": "xrlflow-graph", "version": 1, "nodes": [
            {"op": "Input", "outputs": [[4000000000, 4000000000, 4000000000]]}], "outputs": [[0, 0]]}"#,
        // Transpose attribute that is not a permutation.
        r#"{"format": "xrlflow-graph", "version": 1, "nodes": [
            {"op": "Input", "outputs": [[2, 3]]},
            {"op": "Transpose", "inputs": [[0, 0]], "attrs": {"perm": [1, 1]},
             "outputs": [[3, 2]]}], "outputs": [[1, 0]]}"#,
        // Conv with zero stride (division-by-zero hazard).
        r#"{"format": "xrlflow-graph", "version": 1, "nodes": [
            {"op": "Input", "outputs": [[1, 3, 8, 8]]},
            {"op": "Weight", "outputs": [[4, 3, 3, 3]]},
            {"op": "Conv2d", "inputs": [[0, 0], [1, 0]],
             "attrs": {"kernel": [3, 3], "stride": [0, 0]}, "outputs": [[1, 4, 8, 8]]}],
            "outputs": [[2, 0]]}"#,
    ];
    for (i, doc) in docs.iter().enumerate() {
        match Graph::from_json(doc) {
            Err(_) => {}
            Ok(_) => panic!("corrupted document {i} unexpectedly imported"),
        }
    }
}

#[test]
fn bit_flips_in_a_real_document_never_panic() {
    // Fuzz-lite: single-character corruptions of a valid document must
    // either re-import (the character was in a name) or fail with a typed
    // error — never panic. Deterministic, no RNG.
    let text = build_model(ModelKind::Vit, ModelScale::Bench).unwrap().to_json();
    let bytes = text.as_bytes();
    let step = (bytes.len() / 48).max(1);
    for pos in (0..bytes.len()).step_by(step) {
        let mut corrupted = bytes.to_vec();
        corrupted[pos] = corrupted[pos].wrapping_add(1);
        if let Ok(s) = String::from_utf8(corrupted) {
            let _ = Graph::from_json(&s);
        }
    }
}
