//! A PET-style baseline: partially equivalent transformations with
//! correction kernels, searched greedily under a cost model that ignores
//! element-wise operators.
//!
//! PET (Wang et al., OSDI 2021) relaxes TASO's full-equivalence requirement:
//! a substitution may compute only part of the output (e.g. over a reshaped
//! batch or a sub-window), with automatically generated correction kernels
//! restoring equivalence. The paper's Table 2 observes two behaviours this
//! module reproduces:
//!
//! * PET's benefit is very sensitive to operator shapes — its
//!   partially-equivalent transforms apply to plain convolutions
//!   (ResNet-18) but not to grouped convolutions (ResNeXt-50);
//! * PET ignores element-wise operator runtime in its cost model, so its
//!   ranking can be over-optimistic about the cost of the correction
//!   kernels it introduces.

use std::collections::HashMap;

use xrlflow_cost::{CostModel, DeviceProfile};
use xrlflow_graph::{
    Graph, GraphError, GraphPatch, NodeId, OpAttributes, OpKind, Padding, PatchBuilder, TensorRef,
};
use xrlflow_rewrite::{is_parameter, RewriteRule, RuleMatch, RuleSet};

use crate::search::{GreedyOptimizer, OptimizationResult, SearchConfig};

/// A partially equivalent transformation: a plain (ungrouped) 3x3 stride-1
/// convolution over an even spatial grid is computed over a half-resolution
/// slice and padded back, followed by a correction `Add`.
///
/// The transformed convolution performs a quarter of the work; the
/// correction kernels are element-wise and therefore invisible to PET's
/// cost model, but they are *not* free at inference time — which is why
/// PET's advantage is shape- and architecture-dependent.
#[derive(Debug, Clone, Default)]
pub struct PartiallyEquivalentConv;

impl RewriteRule for PartiallyEquivalentConv {
    fn name(&self) -> &'static str {
        "pet-partial-conv"
    }

    fn find_matches(&self, graph: &Graph) -> Vec<RuleMatch> {
        graph
            .iter()
            .filter(|(_, n)| {
                n.op == OpKind::Conv2d
                    && n.attrs.groups <= 1
                    && n.attrs.kernel == Some([3, 3])
                    && n.attrs.stride == Some([1, 1])
                    && n.attrs.padding == Padding::Same
                    && n.attrs.fused_activation.is_none()
                    && n.inputs.len() == 2
                    && is_parameter(graph, n.inputs[1])
                    && n.outputs[0].rank() == 4
                    && n.outputs[0].dim(2) % 2 == 0
                    && n.outputs[0].dim(3) % 2 == 0
                    && n.outputs[0].dim(2) >= 8
            })
            .map(|(id, _)| RuleMatch::new(vec![id]))
            .collect()
    }

    fn build_patch(&self, graph: &Graph, site: &RuleMatch) -> Result<GraphPatch, GraphError> {
        let [conv_id] = site.expect_nodes();
        let conv = graph.node(conv_id)?;
        let input_ref = conv.inputs[0];
        let weight_ref = conv.inputs[1];
        let in_shape = graph.tensor_shape(input_ref)?;
        let out_shape = conv.outputs[0].clone();
        let mut pb = PatchBuilder::new(graph);

        // Slice the input to half resolution, convolve, pad back and correct.
        let half_in = vec![in_shape.dim(0), in_shape.dim(1), in_shape.dim(2) / 2, in_shape.dim(3) / 2];
        let slice = pb.add_node(
            OpKind::Slice,
            OpAttributes { target_shape: Some(half_in), ..Default::default() },
            vec![input_ref.into()],
        )?;
        let small_conv =
            pb.add_node(OpKind::Conv2d, conv.attrs.clone(), vec![slice.into(), weight_ref.into()])?;
        let pad = pb.add_node(
            OpKind::Pad,
            OpAttributes { target_shape: Some(out_shape.dims().to_vec()), ..Default::default() },
            vec![small_conv.into()],
        )?;
        // Correction kernels: element-wise operators restoring the missing
        // output region (structurally modelled as a multiply-add against
        // correction constants).
        let correction = pb.add_constant(out_shape.clone());
        let corrected =
            pb.add_node(OpKind::Mul, OpAttributes::default(), vec![pad.into(), correction.into()])?;
        let residual = pb.add_constant(out_shape);
        let fixed =
            pb.add_node(OpKind::Add, OpAttributes::default(), vec![corrected.into(), residual.into()])?;
        pb.replace_all_uses(TensorRef::new(conv_id), fixed)?;
        Ok(pb.finish())
    }
}

/// A cost model in PET's style: identical to the TASO cost model except that
/// element-wise operators are assumed to be free.
#[derive(Debug, Clone, Default)]
pub struct ElementwiseBlindCostModel {
    inner: CostModel,
}

impl ElementwiseBlindCostModel {
    /// Creates the cost model for a device profile.
    pub fn new(profile: DeviceProfile) -> Self {
        Self { inner: CostModel::new(profile) }
    }

    /// Estimated graph cost in milliseconds, ignoring element-wise operators.
    pub fn graph_cost_ms(&self, graph: &Graph) -> f64 {
        graph
            .iter()
            .filter(|(_, n)| !n.op.is_elementwise())
            .map(|(id, _)| self.inner.node_cost_ms(graph, id))
            .sum()
    }

    /// Estimated cost of one node (zero for element-wise operators).
    pub fn node_cost_ms(&self, graph: &Graph, id: NodeId) -> f64 {
        match graph.node(id) {
            Ok(n) if n.op.is_elementwise() => 0.0,
            Ok(_) => self.inner.node_cost_ms(graph, id),
            Err(_) => 0.0,
        }
    }
}

/// The PET-style optimiser: greedy search over the standard rules plus the
/// partially equivalent convolution transform, ranked by the
/// element-wise-blind cost model.
#[derive(Debug)]
pub struct PetOptimizer {
    profile: DeviceProfile,
    config: SearchConfig,
}

impl PetOptimizer {
    /// Creates a PET-style optimiser.
    pub fn new(profile: DeviceProfile, config: SearchConfig) -> Self {
        Self { profile, config }
    }

    /// The rule set used by PET: every standard rule plus the partially
    /// equivalent convolution transform.
    pub fn rules() -> RuleSet {
        let mut rules = xrlflow_rewrite::rules::standard_rules();
        rules.push(Box::new(PartiallyEquivalentConv));
        RuleSet::new(rules)
    }

    /// Runs the search. The returned result's cost fields are computed with
    /// the *full* cost model so they are comparable with other optimisers.
    pub fn optimize(&self, graph: &Graph) -> OptimizationResult {
        // Greedy search under the element-wise-blind cost model.
        let blind = ElementwiseBlindCostModel::new(self.profile.clone());
        let rules = Self::rules();
        let full = CostModel::new(self.profile.clone());
        let start = std::time::Instant::now();

        let mut current = graph.clone();
        let mut current_blind = blind.graph_cost_ms(&current);
        let mut rule_applications: HashMap<&'static str, usize> = HashMap::new();
        let mut steps = 0;
        let mut candidates_evaluated = 0;
        for _ in 0..self.config.budget {
            let candidates = rules.generate_candidates(&current, self.config.max_candidates);
            candidates_evaluated += candidates.len();
            let best = candidates
                .into_iter()
                .filter_map(|c| {
                    let graph = c.materialize(&current).ok()?;
                    let cost = blind.graph_cost_ms(&graph);
                    Some((c, graph, cost))
                })
                .min_by(|a, b| a.2.total_cmp(&b.2));
            match best {
                Some((candidate, graph, cost)) if cost < current_blind => {
                    *rule_applications.entry(candidate.rule_name).or_insert(0) += 1;
                    current = graph;
                    current_blind = cost;
                    steps += 1;
                }
                _ => break,
            }
        }

        OptimizationResult {
            initial_cost_ms: full.graph_cost_ms(graph),
            final_cost_ms: full.graph_cost_ms(&current),
            graph: current,
            steps,
            rule_applications,
            candidates_evaluated,
            optimisation_time_s: start.elapsed().as_secs_f64(),
        }
    }

    /// A TASO greedy optimiser with the same budget, for side-by-side
    /// comparisons (Table 2).
    pub fn taso_counterpart(&self) -> GreedyOptimizer {
        GreedyOptimizer::new(RuleSet::standard(), CostModel::new(self.profile.clone()), self.config.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    #[test]
    fn partial_conv_matches_plain_but_not_grouped_convs() {
        let resnet = build_model(ModelKind::ResNet18, ModelScale::Bench).unwrap();
        let resnext = build_model(ModelKind::ResNext50, ModelScale::Bench).unwrap();
        let rule = PartiallyEquivalentConv;
        let plain = rule.find_matches(&resnet).len();
        assert!(plain > 0, "expected partially-equivalent opportunities in ResNet-18");
        // ResNeXt's 3x3 convolutions are grouped and therefore unsupported.
        let grouped_3x3: Vec<_> = rule
            .find_matches(&resnext)
            .iter()
            .filter(|m| resnext.node(m.nodes[0]).unwrap().attrs.groups > 1)
            .cloned()
            .collect();
        assert!(grouped_3x3.is_empty());
    }

    #[test]
    fn partial_conv_apply_is_valid_and_cheaper_under_blind_model() {
        let g = build_model(ModelKind::ResNet18, ModelScale::Bench).unwrap();
        let rule = PartiallyEquivalentConv;
        let matches = rule.find_matches(&g);
        let out = rule.apply(&g, &matches[0]).unwrap();
        assert!(out.validate().is_ok());
        let blind = ElementwiseBlindCostModel::new(DeviceProfile::gtx1080());
        assert!(blind.graph_cost_ms(&out) < blind.graph_cost_ms(&g));
    }

    #[test]
    fn blind_cost_model_ignores_elementwise() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let blind = ElementwiseBlindCostModel::new(DeviceProfile::gtx1080());
        let full = CostModel::new(DeviceProfile::gtx1080());
        assert!(blind.graph_cost_ms(&g) < full.graph_cost_ms(&g));
        let relu = g.iter().find(|(_, n)| n.op == OpKind::Relu).unwrap().0;
        assert_eq!(blind.node_cost_ms(&g, relu), 0.0);
    }

    #[test]
    fn pet_optimizer_runs_on_resnet18() {
        let g = build_model(ModelKind::ResNet18, ModelScale::Bench).unwrap();
        let pet = PetOptimizer::new(
            DeviceProfile::gtx1080(),
            SearchConfig { budget: 15, max_candidates: 32, alpha: 1.05 },
        );
        let result = pet.optimize(&g);
        assert!(result.graph.validate().is_ok());
        assert!(result.steps > 0);
    }
}
