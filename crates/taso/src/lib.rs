//! # xrlflow-taso
//!
//! The cost-model-driven baselines the paper compares against: TASO's greedy
//! and backtracking substitution engines, and a PET-style partially
//! equivalent optimiser used in the Table 2 motivation experiment.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_cost::{CostModel, DeviceProfile};
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//! use xrlflow_rewrite::RuleSet;
//! use xrlflow_taso::{GreedyOptimizer, SearchConfig};
//!
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let optimizer = GreedyOptimizer::new(
//!     RuleSet::standard(),
//!     CostModel::new(DeviceProfile::gtx1080()),
//!     SearchConfig::default(),
//! );
//! let result = optimizer.optimize(&graph);
//! println!("TASO improved the cost model by {:.1}%", result.improvement_percent());
//! ```

#![warn(missing_docs)]

mod pet;
mod search;

pub use pet::{ElementwiseBlindCostModel, PartiallyEquivalentConv, PetOptimizer};
pub use search::{BacktrackingOptimizer, GreedyOptimizer, OptimizationResult, SearchConfig};
