//! Cost-based substitution search: TASO's greedy and backtracking engines.
//!
//! TASO ranks every candidate with its per-operator cost model and greedily
//! takes the best one; its backtracking variant also enqueues candidates
//! whose cost is within `alpha` of the best seen so far and explores them
//! under an iteration budget. Both engines optimise the *cost model*, not
//! end-to-end latency — which is exactly the behaviour X-RLflow improves on.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::time::Instant;

use xrlflow_cost::CostModel;
use xrlflow_graph::Graph;
use xrlflow_rewrite::RuleSet;

/// Result of running a substitution search.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// The optimised graph.
    pub graph: Graph,
    /// Cost-model estimate of the initial graph (ms).
    pub initial_cost_ms: f64,
    /// Cost-model estimate of the optimised graph (ms).
    pub final_cost_ms: f64,
    /// Number of substitutions applied along the chosen trajectory.
    pub steps: usize,
    /// How many times each rule was applied along the chosen trajectory
    /// (rule name -> count); the Figure 5 heatmap for the baseline.
    pub rule_applications: HashMap<&'static str, usize>,
    /// Number of candidate graphs evaluated in total.
    pub candidates_evaluated: usize,
    /// Wall-clock optimisation time in seconds.
    pub optimisation_time_s: f64,
}

impl OptimizationResult {
    /// Relative cost-model improvement in percent.
    pub fn improvement_percent(&self) -> f64 {
        if self.initial_cost_ms == 0.0 {
            0.0
        } else {
            (self.initial_cost_ms - self.final_cost_ms) / self.initial_cost_ms * 100.0
        }
    }
}

/// Configuration shared by the greedy and backtracking engines.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Maximum number of substitution steps (greedy) or queue pops
    /// (backtracking).
    pub budget: usize,
    /// Maximum number of candidates generated per step.
    pub max_candidates: usize,
    /// Backtracking relaxation: candidates with cost below
    /// `alpha * best_cost` are kept on the queue (TASO's default is 1.05).
    pub alpha: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self { budget: 100, max_candidates: 64, alpha: 1.05 }
    }
}

/// TASO-style greedy substitution engine: at every step, apply the candidate
/// with the lowest cost-model estimate, stopping when no candidate improves
/// on the current graph.
#[derive(Debug)]
pub struct GreedyOptimizer {
    rules: RuleSet,
    cost_model: CostModel,
    config: SearchConfig,
}

impl GreedyOptimizer {
    /// Creates a greedy optimiser.
    pub fn new(rules: RuleSet, cost_model: CostModel, config: SearchConfig) -> Self {
        Self { rules, cost_model, config }
    }

    /// Runs the search from `graph`.
    pub fn optimize(&self, graph: &Graph) -> OptimizationResult {
        let start = Instant::now();
        let initial_cost_ms = self.cost_model.graph_cost_ms(graph);
        let mut current = graph.clone();
        let mut current_cost = initial_cost_ms;
        let mut rule_applications: HashMap<&'static str, usize> = HashMap::new();
        let mut steps = 0;
        let mut candidates_evaluated = 0;

        for _ in 0..self.config.budget {
            let candidates = self.rules.generate_candidates(&current, self.config.max_candidates);
            candidates_evaluated += candidates.len();
            let best = candidates
                .into_iter()
                .filter_map(|c| {
                    let graph = c.materialize(&current).ok()?;
                    let cost = self.cost_model.graph_cost_ms(&graph);
                    Some((c, graph, cost))
                })
                .min_by(|a, b| a.2.total_cmp(&b.2));
            match best {
                Some((candidate, graph, cost)) if cost < current_cost => {
                    *rule_applications.entry(candidate.rule_name).or_insert(0) += 1;
                    current = graph;
                    current_cost = cost;
                    steps += 1;
                }
                _ => break,
            }
        }

        OptimizationResult {
            final_cost_ms: current_cost,
            graph: current,
            initial_cost_ms,
            steps,
            rule_applications,
            candidates_evaluated,
            optimisation_time_s: start.elapsed().as_secs_f64(),
        }
    }
}

#[derive(Debug)]
struct QueueEntry {
    cost: f64,
    order: usize,
    graph: Graph,
    steps: usize,
    rules: Vec<&'static str>,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.order == other.order
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; we want the lowest cost first.
        other.cost.total_cmp(&self.cost).then(other.order.cmp(&self.order))
    }
}

/// TASO's backtracking search: a best-first queue of graphs whose cost is
/// within `alpha` of the best cost seen so far, explored under a budget.
#[derive(Debug)]
pub struct BacktrackingOptimizer {
    rules: RuleSet,
    cost_model: CostModel,
    config: SearchConfig,
}

impl BacktrackingOptimizer {
    /// Creates a backtracking optimiser (TASO's default engine).
    pub fn new(rules: RuleSet, cost_model: CostModel, config: SearchConfig) -> Self {
        Self { rules, cost_model, config }
    }

    /// Runs the search from `graph`.
    pub fn optimize(&self, graph: &Graph) -> OptimizationResult {
        let start = Instant::now();
        let initial_cost_ms = self.cost_model.graph_cost_ms(graph);
        let mut best_graph = graph.clone();
        let mut best_cost = initial_cost_ms;
        let mut best_rules: Vec<&'static str> = Vec::new();
        let mut best_steps = 0;

        let mut queue = BinaryHeap::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut order = 0;
        seen.insert(graph.canonical_hash());
        queue.push(QueueEntry {
            cost: initial_cost_ms,
            order,
            graph: graph.clone(),
            steps: 0,
            rules: Vec::new(),
        });

        let mut pops = 0;
        let mut candidates_evaluated = 0;
        while let Some(entry) = queue.pop() {
            pops += 1;
            if pops > self.config.budget {
                break;
            }
            if entry.cost < best_cost {
                best_cost = entry.cost;
                best_graph = entry.graph.clone();
                best_rules = entry.rules.clone();
                best_steps = entry.steps;
            }
            if entry.cost > self.config.alpha * best_cost {
                continue;
            }
            for candidate in self.rules.generate_candidates(&entry.graph, self.config.max_candidates) {
                candidates_evaluated += 1;
                let Ok(graph) = candidate.materialize(&entry.graph) else { continue };
                if !seen.insert(graph.canonical_hash()) {
                    continue;
                }
                let cost = self.cost_model.graph_cost_ms(&graph);
                if cost > self.config.alpha * best_cost {
                    continue;
                }
                order += 1;
                let mut rules = entry.rules.clone();
                rules.push(candidate.rule_name);
                queue.push(QueueEntry { cost, order, graph, steps: entry.steps + 1, rules });
            }
        }

        let mut rule_applications: HashMap<&'static str, usize> = HashMap::new();
        for r in &best_rules {
            *rule_applications.entry(r).or_insert(0) += 1;
        }
        OptimizationResult {
            graph: best_graph,
            initial_cost_ms,
            final_cost_ms: best_cost,
            steps: best_steps,
            rule_applications,
            candidates_evaluated,
            optimisation_time_s: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_cost::DeviceProfile;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};

    fn greedy() -> GreedyOptimizer {
        GreedyOptimizer::new(
            RuleSet::standard(),
            CostModel::new(DeviceProfile::gtx1080()),
            SearchConfig { budget: 30, max_candidates: 32, alpha: 1.05 },
        )
    }

    #[test]
    fn greedy_never_increases_cost_model() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let result = greedy().optimize(&g);
        assert!(result.final_cost_ms <= result.initial_cost_ms);
        assert!(result.graph.validate().is_ok());
        assert!(result.steps > 0, "expected at least one substitution on SqueezeNet");
        assert!(result.improvement_percent() >= 0.0);
    }

    #[test]
    fn greedy_applies_fusion_rules_on_conv_nets() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let result = greedy().optimize(&g);
        assert!(
            result.rule_applications.keys().any(|r| r.starts_with("fuse-conv")),
            "expected conv fusions, applied: {:?}",
            result.rule_applications
        );
    }

    #[test]
    fn backtracking_at_least_matches_greedy() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let greedy_result = greedy().optimize(&g);
        let backtracking = BacktrackingOptimizer::new(
            RuleSet::standard(),
            CostModel::new(DeviceProfile::gtx1080()),
            SearchConfig { budget: 60, max_candidates: 32, alpha: 1.05 },
        );
        let bt_result = backtracking.optimize(&g);
        assert!(bt_result.graph.validate().is_ok());
        // Backtracking explores a superset of greedy's frontier under a large
        // enough budget, so it should not do worse by more than noise.
        assert!(bt_result.final_cost_ms <= greedy_result.final_cost_ms * 1.01);
    }

    #[test]
    fn budget_of_zero_is_a_no_op() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let opt = GreedyOptimizer::new(
            RuleSet::standard(),
            CostModel::new(DeviceProfile::gtx1080()),
            SearchConfig { budget: 0, max_candidates: 32, alpha: 1.05 },
        );
        let result = opt.optimize(&g);
        assert_eq!(result.steps, 0);
        assert_eq!(result.graph.canonical_hash(), g.canonical_hash());
    }

    #[test]
    fn transformer_graphs_are_optimised_too() {
        let g = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
        let result = greedy().optimize(&g);
        assert!(result.graph.validate().is_ok());
        assert!(result.steps > 0, "expected substitutions on BERT");
    }
}
