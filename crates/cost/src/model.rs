//! The TASO-style per-operator cost model and the end-to-end inference
//! latency simulator.
//!
//! The paper's central motivation (Section 2.4, Table 1) is that the *sum of
//! per-operator costs* — the signal TASO and Tensat optimise — deviates from
//! the *end-to-end inference latency* by 5–24%, because the cost model
//! cannot see kernel-launch overhead, kernel-selection effects, fusion or
//! constant folding. This module provides both signals:
//!
//! * [`CostModel`] — sums per-operator compute estimates (what TASO ranks
//!   candidates with).
//! * [`InferenceSimulator`] — "runs" the graph: skips constant-foldable
//!   nodes, adds launch overhead per launched kernel, applies deterministic
//!   per-kernel perturbations and optional measurement noise (what X-RLflow
//!   uses as its sparse reward signal).

use std::collections::HashMap;
use std::sync::Mutex;

use xrlflow_graph::{Graph, NodeId, OpKind};

use crate::profile::{kernel_perturbation, node_compute_us, DeviceProfile};

/// The TASO-style cost model: the estimated cost of a graph is the sum of
/// its operators' estimated runtimes.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    profile: DeviceProfile,
}

impl CostModel {
    /// Creates a cost model for a device profile.
    pub fn new(profile: DeviceProfile) -> Self {
        Self { profile }
    }

    /// The device profile in use.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Estimated runtime of a single node in milliseconds.
    pub fn node_cost_ms(&self, graph: &Graph, id: NodeId) -> f64 {
        node_compute_us(graph, id, &self.profile) / 1000.0
    }

    /// Estimated runtime of the whole graph in milliseconds: the sum of all
    /// operator costs, with no launch overhead, no constant folding and no
    /// kernel-selection effects (exactly the assumption the paper criticises).
    pub fn graph_cost_ms(&self, graph: &Graph) -> f64 {
        graph.iter().map(|(id, _)| self.node_cost_ms(graph, id)).sum()
    }
}

/// Configuration of the end-to-end latency simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatorConfig {
    /// Apply constant folding: nodes with no dependence on graph inputs are
    /// pre-computed and excluded from inference latency.
    pub constant_folding: bool,
    /// Add fixed per-kernel launch overhead.
    pub launch_overhead: bool,
    /// Apply the deterministic per-kernel perturbation.
    pub kernel_effects: bool,
    /// Standard deviation of multiplicative measurement noise (0 disables).
    pub noise_std: f64,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        Self { constant_folding: true, launch_overhead: true, kernel_effects: true, noise_std: 0.01 }
    }
}

/// Simulates running end-to-end inference on a graph and reports its latency.
///
/// # Examples
///
/// ```
/// use xrlflow_cost::{DeviceProfile, InferenceSimulator};
/// use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
///
/// let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
/// let sim = InferenceSimulator::new(DeviceProfile::gtx1080());
/// let latency = sim.measure_ms(&g, 0);
/// assert!(latency > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct InferenceSimulator {
    profile: DeviceProfile,
    config: SimulatorConfig,
    /// Memo of the deterministic (pre-noise) latency keyed by the graph's
    /// canonical hash: repeated measurements of structurally identical graphs
    /// — ubiquitous in RL training, where every episode re-measures the same
    /// initial graph and trajectories revisit the same rewrites — skip the
    /// full simulation. Measurement noise is applied per call on top of the
    /// memoised base, preserving the seeded-noise protocol.
    cache: Mutex<HashMap<u64, f64>>,
}

/// Cloning a simulator carries the memoised measurements along.
impl Clone for InferenceSimulator {
    fn clone(&self) -> Self {
        Self {
            profile: self.profile.clone(),
            config: self.config,
            cache: Mutex::new(self.cache.lock().expect("simulator cache poisoned").clone()),
        }
    }
}

/// Bound on memoised entries; the cache is cleared when it would grow past
/// this (graph sets per optimisation run are far smaller in practice).
const MEASUREMENT_CACHE_CAP: usize = 8192;

impl InferenceSimulator {
    /// Creates a simulator with the default configuration.
    pub fn new(profile: DeviceProfile) -> Self {
        Self { profile, config: SimulatorConfig::default(), cache: Mutex::new(HashMap::new()) }
    }

    /// Creates a simulator with an explicit configuration.
    pub fn with_config(profile: DeviceProfile, config: SimulatorConfig) -> Self {
        Self { profile, config, cache: Mutex::new(HashMap::new()) }
    }

    /// The device profile in use.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Simulated end-to-end latency of one inference pass, in milliseconds.
    ///
    /// `seed` controls the measurement-noise draw so repeated measurements
    /// (the paper reports mean ± std over 5 runs) differ slightly; the
    /// underlying deterministic latency is identical for identical graphs.
    pub fn measure_ms(&self, graph: &Graph, seed: u64) -> f64 {
        let _span = xrlflow_obs::span!("cost/simulator/measure");
        let key = graph.canonical_hash();
        let cached = self.cache.lock().expect("simulator cache poisoned").get(&key).copied();
        let base_ms = match cached {
            Some(ms) => {
                xrlflow_obs::counter!("cost/simulator/memo_hit").inc();
                ms
            }
            None => {
                xrlflow_obs::counter!("cost/simulator/memo_miss").inc();
                // Simulate outside the critical section so concurrent
                // callers are never blocked behind a cold measurement (a
                // racing duplicate simulation is deterministic and cheap).
                let ms = self.simulate_ms(graph);
                let mut cache = self.cache.lock().expect("simulator cache poisoned");
                if cache.len() >= MEASUREMENT_CACHE_CAP {
                    cache.clear();
                }
                cache.insert(key, ms);
                ms
            }
        };
        let hits = xrlflow_obs::counter!("cost/simulator/memo_hit").get();
        let misses = xrlflow_obs::counter!("cost/simulator/memo_miss").get();
        if hits + misses > 0 {
            xrlflow_obs::gauge!("cost/simulator/memo_hit_ratio").set(hits as f64 / (hits + misses) as f64);
        }
        let mut ms = base_ms;
        if self.config.noise_std > 0.0 {
            ms *= 1.0 + self.config.noise_std * hash_noise(key, seed);
        }
        ms
    }

    /// Number of distinct graphs whose deterministic latency is memoised.
    pub fn cached_measurements(&self) -> usize {
        self.cache.lock().expect("simulator cache poisoned").len()
    }

    /// The uncached deterministic simulation (no measurement noise).
    fn simulate_ms(&self, graph: &Graph) -> f64 {
        let folded = if self.config.constant_folding { graph.foldable_nodes() } else { Default::default() };
        let mut total_us = 0.0;
        for (id, node) in graph.iter() {
            if node.op.is_source() || folded.contains(&id) {
                continue;
            }
            let mut us = node_compute_us(graph, id, &self.profile);
            if self.config.kernel_effects {
                us *= kernel_perturbation(&self.profile, node);
            }
            if self.config.launch_overhead {
                us += self.profile.kernel_launch_us;
            }
            total_us += us;
        }
        total_us / 1000.0
    }

    /// Mean and standard deviation of latency over `repeats` measurements
    /// (mirrors the paper's protocol of five repetitions per data point).
    pub fn measure_repeated_ms(&self, graph: &Graph, repeats: usize, base_seed: u64) -> (f64, f64) {
        assert!(repeats > 0, "repeats must be positive");
        let samples: Vec<f64> =
            (0..repeats).map(|i| self.measure_ms(graph, base_seed.wrapping_add(i as u64))).collect();
        let mean = samples.iter().sum::<f64>() / repeats as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / repeats as f64;
        (mean, var.sqrt())
    }

    /// Number of kernels actually launched (non-source, non-folded nodes).
    pub fn launched_kernels(&self, graph: &Graph) -> usize {
        let folded = if self.config.constant_folding { graph.foldable_nodes() } else { Default::default() };
        graph.iter().filter(|(id, node)| !node.op.is_source() && !folded.contains(id)).count()
    }
}

/// Standard-normal-ish noise in `[-3, 3]` derived from the graph's canonical
/// hash and a seed (sum of uniform draws, Irwin–Hall approximation).
fn hash_noise(graph_hash: u64, seed: u64) -> f64 {
    let mut state = graph_hash ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut sum = 0.0;
    for _ in 0..12 {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f64 / (1u64 << 24) as f64;
        sum += u;
    }
    sum - 6.0
}

/// One row of the paper's Table 1: cost-model estimate vs end-to-end latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Discrepancy {
    /// Name of the workload.
    pub name: String,
    /// Cost-model estimate in milliseconds.
    pub cost_model_ms: f64,
    /// Simulated end-to-end latency in milliseconds.
    pub e2e_ms: f64,
}

impl Discrepancy {
    /// Relative difference in percent, `|e2e - cost| / e2e * 100`.
    pub fn diff_percent(&self) -> f64 {
        if self.e2e_ms == 0.0 {
            0.0
        } else {
            (self.e2e_ms - self.cost_model_ms).abs() / self.e2e_ms * 100.0
        }
    }
}

/// Computes the Table 1 discrepancy between the cost model and the simulator
/// for a named graph.
pub fn discrepancy(
    name: &str,
    graph: &Graph,
    cost_model: &CostModel,
    simulator: &InferenceSimulator,
) -> Discrepancy {
    Discrepancy {
        name: name.to_string(),
        cost_model_ms: cost_model.graph_cost_ms(graph),
        e2e_ms: simulator.measure_ms(graph, 0),
    }
}

/// Counts how many operators of each kind contribute to a graph's cost
/// (useful for reports and for the Figure 5 analysis).
pub fn cost_breakdown(graph: &Graph, cost_model: &CostModel) -> Vec<(OpKind, f64)> {
    let mut per_kind: std::collections::BTreeMap<OpKind, f64> = Default::default();
    for (id, node) in graph.iter() {
        if node.op.is_source() {
            continue;
        }
        *per_kind.entry(node.op).or_insert(0.0) += cost_model.node_cost_ms(graph, id);
    }
    per_kind.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
    use xrlflow_graph::{OpAttributes, TensorShape};

    fn simulator() -> InferenceSimulator {
        InferenceSimulator::new(DeviceProfile::gtx1080())
    }

    #[test]
    fn e2e_exceeds_cost_model_due_to_launch_overhead() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let cm = CostModel::new(DeviceProfile::gtx1080());
        let sim = simulator();
        let d = discrepancy("SqueezeNet", &g, &cm, &sim);
        assert!(d.cost_model_ms > 0.0);
        assert!(d.e2e_ms > 0.0);
        assert!(d.diff_percent() > 1.0, "expected a visible discrepancy, got {}", d.diff_percent());
    }

    #[test]
    fn discrepancy_in_papers_range_for_eval_models() {
        // Table 1 reports 5-24%; we only require the discrepancy to be
        // non-trivial and bounded.
        let cm = CostModel::new(DeviceProfile::gtx1080());
        let sim = simulator();
        for kind in [ModelKind::Bert, ModelKind::InceptionV3, ModelKind::SqueezeNet] {
            let g = build_model(kind, ModelScale::Bench).unwrap();
            let d = discrepancy(kind.name(), &g, &cm, &sim);
            assert!(
                d.diff_percent() > 1.0 && d.diff_percent() < 95.0,
                "{kind}: discrepancy {}% out of plausible range",
                d.diff_percent()
            );
        }
    }

    #[test]
    fn constant_folding_reduces_latency() {
        // A graph with a weight-only subgraph should get faster when folding
        // is enabled (but its cost-model estimate is oblivious).
        let mut g = Graph::new();
        let x = g.add_input(TensorShape::new(vec![1, 256]));
        let w1 = g.add_weight(TensorShape::new(vec![256, 256]));
        let w2 = g.add_weight(TensorShape::new(vec![256, 256]));
        // Foldable chain: w1 x w2.
        let fold = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![w1.into(), w2.into()]).unwrap();
        let live = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), fold.into()]).unwrap();
        g.mark_output(live.into());

        let with_folding = simulator();
        let without_folding = InferenceSimulator::with_config(
            DeviceProfile::gtx1080(),
            SimulatorConfig { constant_folding: false, ..SimulatorConfig::default() },
        );
        assert!(with_folding.measure_ms(&g, 0) < without_folding.measure_ms(&g, 0));
        assert_eq!(with_folding.launched_kernels(&g), 1);
        assert_eq!(without_folding.launched_kernels(&g), 2);
    }

    #[test]
    fn repeated_measurements_have_small_spread() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let sim = simulator();
        let (mean, std) = sim.measure_repeated_ms(&g, 5, 42);
        assert!(mean > 0.0);
        assert!(std / mean < 0.1, "noise too large: {std} vs {mean}");
    }

    #[test]
    fn identical_graphs_measure_identically() {
        let g = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
        let sim = simulator();
        assert_eq!(sim.measure_ms(&g, 7), sim.measure_ms(&g.clone(), 7));
    }

    #[test]
    fn memoization_hits_for_identical_graphs_and_matches_uncached() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let sim = simulator();
        let first = sim.measure_ms(&g, 3);
        assert_eq!(sim.cached_measurements(), 1);
        // Structurally identical clone: served from the memo, same value.
        let second = sim.measure_ms(&g.clone(), 3);
        assert_eq!(sim.cached_measurements(), 1, "clone must hit the memo");
        assert_eq!(first, second);
        // The memoised value agrees with a cold simulator.
        let cold = simulator();
        assert_eq!(cold.measure_ms(&g, 3), first);
        // Different seeds draw fresh noise on top of the same memoised base.
        assert_ne!(sim.measure_ms(&g, 4), first);
        assert_eq!(sim.cached_measurements(), 1);
    }

    #[test]
    fn memoization_invalidates_on_graph_change() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let sim = simulator();
        let before = sim.measure_ms(&g, 0);
        // Change the graph: a memoised entry for the old hash must not leak.
        let mut changed = g.clone();
        let out = changed.outputs()[0];
        let relu = changed.add_node(OpKind::Relu, OpAttributes::default(), vec![out]).unwrap();
        changed.mark_output(relu.into());
        let after = sim.measure_ms(&changed, 0);
        assert_eq!(sim.cached_measurements(), 2, "changed graph must get its own entry");
        assert_ne!(before, after);
        assert_eq!(
            after,
            simulator().measure_ms(&changed, 0),
            "memo must not corrupt the changed measurement"
        );
    }

    #[test]
    fn cloned_simulator_keeps_the_memo_warm() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let sim = simulator();
        let v = sim.measure_ms(&g, 1);
        let cloned = sim.clone();
        assert_eq!(cloned.cached_measurements(), 1);
        assert_eq!(cloned.measure_ms(&g, 1), v);
    }

    #[test]
    fn cost_breakdown_sums_to_graph_cost() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let cm = CostModel::new(DeviceProfile::gtx1080());
        let breakdown = cost_breakdown(&g, &cm);
        let total: f64 = breakdown.iter().map(|(_, c)| c).sum();
        assert!((total - cm.graph_cost_ms(&g)).abs() < 1e-9);
        assert!(breakdown.iter().any(|(k, _)| *k == OpKind::Conv2d));
    }

    #[test]
    fn fewer_kernels_is_faster_all_else_equal() {
        // Removing an elementwise op (e.g. by fusing it) must reduce simulated latency.
        let mut g1 = Graph::new();
        let x = g1.add_input(TensorShape::new(vec![1, 1024]));
        let w = g1.add_weight(TensorShape::new(vec![1024, 1024]));
        let mm = g1.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
        let relu = g1.add_node(OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap();
        g1.mark_output(relu.into());

        let mut g2 = Graph::new();
        let x = g2.add_input(TensorShape::new(vec![1, 1024]));
        let w = g2.add_weight(TensorShape::new(vec![1024, 1024]));
        let mm = g2.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
        g2.mark_output(mm.into());

        let sim = simulator();
        assert!(sim.measure_ms(&g2, 0) < sim.measure_ms(&g1, 0));
    }
}
