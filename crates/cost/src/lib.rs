//! # xrlflow-cost
//!
//! Cost modelling and end-to-end latency simulation for the X-RLflow
//! reproduction.
//!
//! The original system measures operator runtimes and end-to-end latency on
//! an NVIDIA GTX 1080; this crate substitutes an analytical roofline
//! simulator (see `DESIGN.md` for the substitution rationale). It exposes
//! two signals with an intentional, deterministic discrepancy between them:
//!
//! * [`CostModel`] — the TASO-style sum of per-operator costs, and
//! * [`InferenceSimulator`] — the simulated end-to-end inference latency
//!   (launch overhead, kernel-selection effects, constant folding).
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_cost::{CostModel, DeviceProfile, InferenceSimulator, discrepancy};
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//!
//! let g = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
//! let cm = CostModel::new(DeviceProfile::gtx1080());
//! let sim = InferenceSimulator::new(DeviceProfile::gtx1080());
//! let row = discrepancy("BERT", &g, &cm, &sim);
//! println!("cost model {:.3} ms vs end-to-end {:.3} ms ({:.1}% apart)",
//!          row.cost_model_ms, row.e2e_ms, row.diff_percent());
//! ```

#![warn(missing_docs)]

mod model;
mod profile;

pub use model::{cost_breakdown, discrepancy, CostModel, Discrepancy, InferenceSimulator, SimulatorConfig};
pub use profile::{kernel_perturbation, node_compute_us, node_flops, node_memory_bytes, DeviceProfile};
