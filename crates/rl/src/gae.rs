//! Generalised advantage estimation (Schulman et al., 2015), used to compute
//! the advantages `A` in the PPO-clip objective (Eq. 3).

/// Computes GAE advantages and value targets (returns).
///
/// `rewards[t]`, `values[t]` and `dones[t]` describe step `t` of a rollout;
/// `last_value` bootstraps the value of the state after the final step
/// (zero when the episode terminated).
///
/// Returns `(advantages, returns)` where `returns[t] = advantages[t] + values[t]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn gae(
    rewards: &[f32],
    values: &[f32],
    dones: &[bool],
    last_value: f32,
    gamma: f32,
    lambda: f32,
) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(rewards.len(), values.len(), "rewards/values length mismatch");
    assert_eq!(rewards.len(), dones.len(), "rewards/dones length mismatch");
    let n = rewards.len();
    let mut advantages = vec![0.0f32; n];
    let mut next_advantage = 0.0f32;
    let mut next_value = last_value;
    for t in (0..n).rev() {
        let not_done = if dones[t] { 0.0 } else { 1.0 };
        let delta = rewards[t] + gamma * next_value * not_done - values[t];
        next_advantage = delta + gamma * lambda * not_done * next_advantage;
        advantages[t] = next_advantage;
        next_value = values[t];
    }
    let returns = advantages.iter().zip(values).map(|(a, v)| a + v).collect();
    (advantages, returns)
}

/// Plain discounted returns (used in tests and as a GAE sanity check with
/// `lambda = 1`).
pub fn discounted_returns(rewards: &[f32], dones: &[bool], gamma: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; rewards.len()];
    let mut acc = 0.0;
    for t in (0..rewards.len()).rev() {
        if dones[t] {
            acc = 0.0;
        }
        acc = rewards[t] + gamma * acc;
        out[t] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_episode() {
        let (adv, ret) = gae(&[1.0], &[0.4], &[true], 0.0, 0.99, 0.95);
        assert!((adv[0] - (1.0 - 0.4)).abs() < 1e-6);
        assert!((ret[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn terminal_state_does_not_bootstrap() {
        // With a termination at t=0, the last_value must not leak in.
        let (adv, _) = gae(&[1.0], &[0.0], &[true], 100.0, 0.99, 0.95);
        assert!((adv[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gae_with_lambda_one_matches_discounted_returns_minus_value() {
        let rewards = [0.5, 0.1, 0.1, 2.0];
        let dones = [false, false, false, true];
        let values = [0.2, 0.3, 0.1, 0.4];
        let (adv, _) = gae(&rewards, &values, &dones, 0.0, 0.9, 1.0);
        let returns = discounted_returns(&rewards, &dones, 0.9);
        for t in 0..rewards.len() {
            assert!((adv[t] - (returns[t] - values[t])).abs() < 1e-5, "mismatch at {t}");
        }
    }

    #[test]
    fn positive_rewards_give_positive_advantages_for_zero_values() {
        let (adv, ret) = gae(&[0.1, 0.1, 1.0], &[0.0, 0.0, 0.0], &[false, false, true], 0.0, 0.99, 0.95);
        assert!(adv.iter().all(|&a| a > 0.0));
        assert!(ret.iter().all(|&r| r > 0.0));
        // Earlier steps see the discounted future, so the first advantage is
        // larger than the immediate reward alone.
        assert!(adv[0] > 0.1);
    }

    #[test]
    fn returns_equal_advantages_plus_values() {
        let rewards = [1.0, -0.5, 0.3];
        let values = [0.5, 0.2, 0.7];
        let dones = [false, false, false];
        let (adv, ret) = gae(&rewards, &values, &dones, 0.25, 0.99, 0.95);
        for t in 0..3 {
            assert!((ret[t] - (adv[t] + values[t])).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        gae(&[1.0, 2.0], &[0.0], &[false], 0.0, 0.99, 0.95);
    }
}
