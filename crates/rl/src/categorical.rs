//! Masked categorical action distribution.
//!
//! X-RLflow's action space is padded to a constant size and a boolean mask
//! marks which candidates actually exist at the current step ("invalid
//! action masking", Section 3.3.2). Invalid logits are driven to a large
//! negative value so that both their probability and their gradient vanish.

use xrlflow_tensor::XorShiftRng;

/// Logit value assigned to masked-out (invalid) actions.
pub(crate) const MASK_VALUE: f32 = -1.0e9;

/// A categorical distribution over a padded, partially valid action space.
#[derive(Debug, Clone)]
pub struct MaskedCategorical {
    logits: Vec<f32>,
    mask: Vec<bool>,
    probs: Vec<f32>,
}

impl MaskedCategorical {
    /// Creates the distribution from raw logits and a validity mask.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or no action is valid.
    pub fn new(logits: Vec<f32>, mask: Vec<bool>) -> Self {
        assert_eq!(logits.len(), mask.len(), "logits and mask must have equal length");
        assert!(mask.iter().any(|&m| m), "at least one action must be valid");
        let masked: Vec<f32> =
            logits.iter().zip(&mask).map(|(&l, &m)| if m { l } else { MASK_VALUE }).collect();
        let max = masked.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = masked.iter().map(|&l| (l - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let probs = exps.iter().map(|&e| e / sum).collect();
        Self { logits: masked, mask, probs }
    }

    /// Number of (padded) actions.
    pub fn len(&self) -> usize {
        self.logits.len()
    }

    /// Returns `true` if the distribution has no actions (never constructed).
    pub fn is_empty(&self) -> bool {
        self.logits.is_empty()
    }

    /// The masked probabilities (invalid actions have probability ~0).
    pub fn probs(&self) -> &[f32] {
        &self.probs
    }

    /// The mask-adjusted logits.
    pub fn masked_logits(&self) -> &[f32] {
        &self.logits
    }

    /// Samples an action index.
    pub fn sample(&self, rng: &mut XorShiftRng) -> usize {
        rng.sample_weighted(&self.probs)
    }

    /// The most probable action.
    pub fn argmax(&self) -> usize {
        self.probs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0)
    }

    /// Log-probability of an action.
    pub fn log_prob(&self, action: usize) -> f32 {
        self.probs[action].max(1e-12).ln()
    }

    /// Entropy of the distribution (only valid actions contribute).
    pub fn entropy(&self) -> f32 {
        -self
            .probs
            .iter()
            .zip(&self.mask)
            .filter(|(_, &m)| m)
            .map(|(&p, _)| if p > 1e-12 { p * p.ln() } else { 0.0 })
            .sum::<f32>()
    }

    /// The validity mask.
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_actions_have_zero_probability() {
        let d = MaskedCategorical::new(vec![5.0, 1.0, 3.0], vec![false, true, true]);
        assert!(d.probs()[0] < 1e-6);
        assert!((d.probs().iter().sum::<f32>() - 1.0).abs() < 1e-5);
        let mut rng = XorShiftRng::new(3);
        for _ in 0..200 {
            assert_ne!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn argmax_respects_mask() {
        let d = MaskedCategorical::new(vec![10.0, 1.0, 3.0], vec![false, true, true]);
        assert_eq!(d.argmax(), 2);
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let uniform = MaskedCategorical::new(vec![1.0; 4], vec![true; 4]);
        let peaked = MaskedCategorical::new(vec![10.0, 0.0, 0.0, 0.0], vec![true; 4]);
        assert!(uniform.entropy() > peaked.entropy());
        assert!((uniform.entropy() - (4.0f32).ln()).abs() < 1e-3);
    }

    #[test]
    fn log_prob_matches_probs() {
        let d = MaskedCategorical::new(vec![0.3, 0.9], vec![true, true]);
        assert!((d.log_prob(1) - d.probs()[1].ln()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one action must be valid")]
    fn all_masked_panics() {
        MaskedCategorical::new(vec![1.0, 2.0], vec![false, false]);
    }

    #[test]
    fn sampling_distribution_roughly_matches_probs() {
        let d = MaskedCategorical::new(vec![0.0, 2.0], vec![true, true]);
        let mut rng = XorShiftRng::new(11);
        let n = 5000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1).count() as f32 / n as f32;
        assert!((ones - d.probs()[1]).abs() < 0.05);
    }
}
