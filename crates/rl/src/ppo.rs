//! PPO hyper-parameters, the scalar clip objective and training statistics.
//!
//! The tape-based (differentiable) PPO loss lives in `xrlflow-core`; the
//! scalar implementation here defines the reference semantics (Eq. 3–5) and
//! is used to cross-check the differentiable version in integration tests.

/// PPO hyper-parameters (defaults follow Table 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpoHyperParams {
    /// Learning rate of the policy and value networks (Table 4: 5e-4).
    pub learning_rate: f32,
    /// Value-loss coefficient `c1` (Table 4: 0.5).
    pub value_loss_coefficient: f32,
    /// Entropy-loss coefficient `c2` (Table 4: 0.01).
    pub entropy_coefficient: f32,
    /// PPO clip range `epsilon`.
    pub clip_epsilon: f32,
    /// Discount factor `gamma`.
    pub gamma: f32,
    /// GAE smoothing factor `lambda`.
    pub gae_lambda: f32,
    /// Number of episodes collected between updates (Table 4: 10).
    pub update_frequency: usize,
    /// Mini-batch size (Table 4: 16).
    pub batch_size: usize,
    /// Number of optimisation epochs per update.
    pub epochs_per_update: usize,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for PpoHyperParams {
    fn default() -> Self {
        Self {
            learning_rate: 5e-4,
            value_loss_coefficient: 0.5,
            entropy_coefficient: 0.01,
            clip_epsilon: 0.2,
            gamma: 0.99,
            gae_lambda: 0.95,
            update_frequency: 10,
            batch_size: 16,
            epochs_per_update: 4,
            max_grad_norm: 0.5,
        }
    }
}

/// The (scalar) PPO clip objective for a single sample:
/// `min(r * A, clip(r, 1 - eps, 1 + eps) * A)` where
/// `r = exp(log_prob - old_log_prob)`.
///
/// The *loss* is the negation of this value.
pub fn ppo_clip_objective(log_prob: f32, old_log_prob: f32, advantage: f32, clip_epsilon: f32) -> f32 {
    let ratio = (log_prob - old_log_prob).exp();
    let clipped = ratio.clamp(1.0 - clip_epsilon, 1.0 + clip_epsilon);
    (ratio * advantage).min(clipped * advantage)
}

/// Explained variance of value predictions — a standard diagnostic for the
/// value head (1 is perfect, 0 is no better than predicting the mean).
pub fn explained_variance(predicted: &[f32], targets: &[f32]) -> f32 {
    assert_eq!(predicted.len(), targets.len(), "length mismatch");
    if targets.is_empty() {
        return 0.0;
    }
    let mean = targets.iter().sum::<f32>() / targets.len() as f32;
    let var: f32 = targets.iter().map(|t| (t - mean) * (t - mean)).sum::<f32>() / targets.len() as f32;
    if var < 1e-12 {
        return 0.0;
    }
    let residual: f32 =
        predicted.iter().zip(targets).map(|(p, t)| (t - p) * (t - p)).sum::<f32>() / targets.len() as f32;
    1.0 - residual / var
}

/// Aggregate statistics of one PPO update, used for logging and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingStats {
    /// Mean total policy loss.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Mean entropy of the action distribution.
    pub entropy: f32,
    /// Mean episode reward in the rollout.
    pub mean_episode_reward: f32,
    /// Explained variance of the value head.
    pub explained_variance: f32,
    /// Global gradient norm before clipping.
    pub grad_norm: f32,
    /// Fraction of transition evaluations whose probability ratio left the
    /// `[1-ε, 1+ε]` trust region (the clip in the surrogate objective was
    /// active). Persistently high values mean the policy moves too far per
    /// update.
    pub clip_fraction: f32,
    /// Number of transitions used in the update.
    pub transitions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table4() {
        let p = PpoHyperParams::default();
        assert_eq!(p.learning_rate, 5e-4);
        assert_eq!(p.value_loss_coefficient, 0.5);
        assert_eq!(p.entropy_coefficient, 0.01);
        assert_eq!(p.update_frequency, 10);
        assert_eq!(p.batch_size, 16);
    }

    #[test]
    fn clip_objective_identity_at_equal_policies() {
        // With identical policies the ratio is 1 and the objective is the advantage.
        let obj = ppo_clip_objective(-0.7, -0.7, 2.5, 0.2);
        assert!((obj - 2.5).abs() < 1e-6);
    }

    #[test]
    fn clip_objective_caps_positive_advantage_gains() {
        // A much higher new log-prob with positive advantage is clipped at (1 + eps) * A.
        let obj = ppo_clip_objective(0.0, -2.0, 1.0, 0.2);
        assert!((obj - 1.2).abs() < 1e-6);
    }

    #[test]
    fn clip_objective_is_pessimistic_for_negative_advantage() {
        // With negative advantage and an increased ratio, the unclipped term is
        // more negative and must be chosen by the min.
        let unclipped = -(1.0f32).exp();
        let obj = ppo_clip_objective(0.0, -1.0, -1.0, 0.2);
        assert!((obj - unclipped).abs() < 1e-5);
    }

    #[test]
    fn explained_variance_bounds() {
        let targets = [1.0, 2.0, 3.0, 4.0];
        assert!((explained_variance(&targets, &targets) - 1.0).abs() < 1e-6);
        let mean_pred = [2.5; 4];
        assert!(explained_variance(&mean_pred, &targets).abs() < 1e-6);
    }
}
