//! # xrlflow-rl
//!
//! Reinforcement-learning machinery for X-RLflow: masked categorical
//! distributions, generalised advantage estimation (GAE), rollout storage
//! and the scalar PPO-clip objective (Equations 3–5 of the paper).
//!
//! The neural policy itself lives in `xrlflow-core` (it needs the GNN
//! encoder); this crate provides the algorithm-side pieces, which are pure
//! functions over `f32` values and are therefore easy to test exhaustively.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_rl::{gae, MaskedCategorical};
//! use xrlflow_tensor::XorShiftRng;
//!
//! let dist = MaskedCategorical::new(vec![0.1, 2.0, -1.0], vec![true, true, false]);
//! let mut rng = XorShiftRng::new(7);
//! let action = dist.sample(&mut rng);
//! assert!(action < 2, "masked action must never be sampled");
//! let (advantages, returns) = gae(&[1.0, 0.1, 0.1], &[0.5, 0.4, 0.3], &[false, false, true], 0.0, 0.99, 0.95);
//! assert_eq!(advantages.len(), 3);
//! assert_eq!(returns.len(), 3);
//! ```

#![warn(missing_docs)]

mod buffer;
mod categorical;
mod gae;
mod ppo;

pub use buffer::{shard_minibatch, RolloutBuffer, Transition};
pub use categorical::MaskedCategorical;
pub use gae::{discounted_returns, gae};
pub use ppo::{explained_variance, ppo_clip_objective, PpoHyperParams, TrainingStats};
