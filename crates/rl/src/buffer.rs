//! Rollout storage for on-policy training.
//!
//! PPO collects several episodes of experience under the current policy
//! (the paper updates every 10 episodes, Table 4) before performing
//! mini-batch updates; the buffer stores whatever observation type the
//! caller uses (X-RLflow stores the current graph plus its candidate set).

use crate::gae::gae;

/// One environment transition.
#[derive(Debug, Clone)]
pub struct Transition<O> {
    /// The observation the action was taken in.
    pub observation: O,
    /// The action index (into the padded action space).
    pub action: usize,
    /// Log-probability of the action under the behaviour policy.
    pub log_prob: f32,
    /// Value estimate of the observation.
    pub value: f32,
    /// Reward received after the action.
    pub reward: f32,
    /// Whether the episode terminated after this transition.
    pub done: bool,
    /// Validity mask of the padded action space at this step.
    pub action_mask: Vec<bool>,
}

/// A rollout buffer accumulating transitions across episodes.
#[derive(Debug, Clone)]
pub struct RolloutBuffer<O> {
    transitions: Vec<Transition<O>>,
    advantages: Vec<f32>,
    returns: Vec<f32>,
}

// Manual impl: an empty buffer needs no `O: Default` (the derive would
// demand one even though no `O` value is ever constructed).
impl<O> Default for RolloutBuffer<O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O> RolloutBuffer<O> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { transitions: Vec::new(), advantages: Vec::new(), returns: Vec::new() }
    }

    /// Appends a transition.
    pub fn push(&mut self, transition: Transition<O>) {
        self.transitions.push(transition);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` when no transitions are stored.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The stored transitions.
    pub fn transitions(&self) -> &[Transition<O>] {
        &self.transitions
    }

    /// Moves every transition of `other` onto the end of this buffer,
    /// leaving `other` empty.
    ///
    /// This is the merge primitive of the parallel rollout engine: workers
    /// collect per-episode buffers and the engine appends them **in episode
    /// order** (not completion order), so a merged buffer is
    /// transition-for-transition identical to serial collection. Derived
    /// advantages/returns on either buffer are cleared — call
    /// [`RolloutBuffer::compute_advantages`] on the merged result.
    pub fn append(&mut self, other: &mut RolloutBuffer<O>) {
        self.transitions.append(&mut other.transitions);
        self.advantages.clear();
        self.returns.clear();
        other.advantages.clear();
        other.returns.clear();
    }

    /// Computes GAE advantages and returns over the stored transitions
    /// (which may span several episodes — `done` flags reset the estimator).
    /// Advantages are normalised to zero mean and unit variance, the usual
    /// PPO stabilisation.
    pub fn compute_advantages(&mut self, gamma: f32, lambda: f32) {
        self.compute_advantages_segmented(gamma, lambda, &[]);
    }

    /// Like [`RolloutBuffer::compute_advantages`], but normalises the
    /// advantages *within each segment* of transition indices instead of
    /// globally.
    ///
    /// This is the multi-model curriculum's per-spec normalisation: a merged
    /// buffer holds each model's episodes as one contiguous segment, and
    /// normalising per segment stops a large graph's long, high-variance
    /// episodes from drowning the gradient signal of smaller models sharing
    /// the update. GAE itself is unaffected (episode boundaries come from
    /// `done` flags); only the normalisation statistics are per-segment.
    ///
    /// An empty `segments` slice means one segment spanning the whole buffer
    /// — exactly [`RolloutBuffer::compute_advantages`].
    ///
    /// # Panics
    ///
    /// Panics when the segments are not disjoint, in order, and covering
    /// every transition exactly once.
    pub fn compute_advantages_segmented(
        &mut self,
        gamma: f32,
        lambda: f32,
        segments: &[std::ops::Range<usize>],
    ) {
        let rewards: Vec<f32> = self.transitions.iter().map(|t| t.reward).collect();
        let values: Vec<f32> = self.transitions.iter().map(|t| t.value).collect();
        let dones: Vec<bool> = self.transitions.iter().map(|t| t.done).collect();
        let (mut advantages, returns) = gae(&rewards, &values, &dones, 0.0, gamma, lambda);
        let whole = 0..advantages.len();
        let segments = if segments.is_empty() { std::slice::from_ref(&whole) } else { segments };
        let mut covered = 0;
        for segment in segments {
            assert_eq!(segment.start, covered, "segments must partition the buffer in order");
            assert!(segment.end <= advantages.len(), "segment exceeds the buffer");
            covered = segment.end;
            let slice = &mut advantages[segment.clone()];
            if slice.len() > 1 {
                let mean = slice.iter().sum::<f32>() / slice.len() as f32;
                let var = slice.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / slice.len() as f32;
                let std = var.sqrt().max(1e-6);
                for a in slice {
                    *a = (*a - mean) / std;
                }
            }
        }
        assert_eq!(covered, advantages.len(), "segments must cover every transition");
        self.advantages = advantages;
        self.returns = returns;
    }

    /// The normalised advantages (empty before [`RolloutBuffer::compute_advantages`]).
    pub fn advantages(&self) -> &[f32] {
        &self.advantages
    }

    /// The value targets (empty before [`RolloutBuffer::compute_advantages`]).
    pub fn returns(&self) -> &[f32] {
        &self.returns
    }

    /// Yields mini-batches of transition indices of size `batch_size`
    /// (the final batch may be smaller), in a deterministic shuffled order
    /// derived from `seed`.
    pub fn minibatch_indices(&self, batch_size: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut indices: Vec<usize> = (0..self.transitions.len()).collect();
        // Fisher–Yates with a small deterministic generator.
        let mut state = seed | 1;
        for i in (1..indices.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            indices.swap(i, j);
        }
        indices.chunks(batch_size).map(|c| c.to_vec()).collect()
    }

    /// Splits a minibatch (a slice of transition indices, as produced by
    /// [`RolloutBuffer::minibatch_indices`]) into `num_shards` round-robin
    /// shards for the data-parallel PPO update: shard `s` receives every
    /// `(position, transition_index)` pair whose position within the batch
    /// satisfies `position % num_shards == s`.
    ///
    /// The *position* (not the shuffled transition index) drives both the
    /// sharding and the later merge order, so the assignment is a pure
    /// function of the batch and the shard count — reassembling per-position
    /// results in ascending position order reproduces the serial evaluation
    /// order exactly, no matter which worker produced which piece.
    ///
    /// # Panics
    ///
    /// Panics when `num_shards` is zero or any index is out of bounds.
    pub fn shard_minibatch(&self, batch: &[usize], num_shards: usize) -> Vec<Vec<(usize, usize)>> {
        for &index in batch {
            assert!(index < self.transitions.len(), "transition index {index} out of bounds");
        }
        shard_minibatch(batch, num_shards)
    }

    /// Clears all stored data.
    pub fn clear(&mut self) {
        self.transitions.clear();
        self.advantages.clear();
        self.returns.clear();
    }

    /// Sum of rewards per episode, in the order episodes were collected.
    pub fn episode_rewards(&self) -> Vec<f32> {
        let mut out = Vec::new();
        let mut acc = 0.0;
        for t in &self.transitions {
            acc += t.reward;
            if t.done {
                out.push(acc);
                acc = 0.0;
            }
        }
        if acc != 0.0 {
            out.push(acc);
        }
        out
    }
}

/// The buffer-less form of [`RolloutBuffer::shard_minibatch`], for callers
/// (like the data-parallel update engine) that hold only the batch slice:
/// shard `s` receives every `(position, batch[position])` pair with
/// `position % num_shards == s`.
///
/// # Panics
///
/// Panics when `num_shards` is zero.
pub fn shard_minibatch(batch: &[usize], num_shards: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(num_shards > 0, "shard count must be positive");
    let mut shards = vec![Vec::new(); num_shards];
    for (position, &index) in batch.iter().enumerate() {
        shards[position % num_shards].push((position, index));
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(reward: f32, done: bool) -> Transition<u32> {
        Transition {
            observation: 0,
            action: 0,
            log_prob: -0.5,
            value: 0.1,
            reward,
            done,
            action_mask: vec![true],
        }
    }

    #[test]
    fn push_and_episode_rewards() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, false));
        buf.push(transition(2.0, true));
        buf.push(transition(0.5, true));
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.episode_rewards(), vec![3.0, 0.5]);
    }

    #[test]
    fn advantages_are_normalised() {
        let mut buf = RolloutBuffer::new();
        for i in 0..10 {
            buf.push(transition(i as f32, i == 9));
        }
        buf.compute_advantages(0.99, 0.95);
        let adv = buf.advantages();
        let mean: f32 = adv.iter().sum::<f32>() / adv.len() as f32;
        let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / adv.len() as f32;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-3);
        assert_eq!(buf.returns().len(), 10);
    }

    #[test]
    fn segmented_normalisation_with_one_segment_matches_global() {
        let mut global = RolloutBuffer::new();
        let mut segmented = RolloutBuffer::new();
        for i in 0..12 {
            global.push(transition(i as f32 * 0.3 - 1.0, i % 4 == 3));
            segmented.push(transition(i as f32 * 0.3 - 1.0, i % 4 == 3));
        }
        global.compute_advantages(0.99, 0.95);
        segmented.compute_advantages_segmented(0.99, 0.95, std::slice::from_ref(&(0..12)));
        assert_eq!(global.advantages(), segmented.advantages());
        assert_eq!(global.returns(), segmented.returns());
    }

    #[test]
    fn segmented_normalisation_is_per_segment() {
        let mut buf = RolloutBuffer::new();
        // Segment 0: small rewards; segment 1: rewards two orders larger
        // (a "big model dominating the merge" in miniature).
        for i in 0..6 {
            buf.push(transition(i as f32 * 0.1, i == 5));
        }
        for i in 0..6 {
            buf.push(transition(i as f32 * 10.0, i == 5));
        }
        buf.compute_advantages_segmented(0.99, 0.95, &[0..6, 6..12]);
        for segment in [0..6usize, 6..12] {
            let adv = &buf.advantages()[segment];
            let mean: f32 = adv.iter().sum::<f32>() / adv.len() as f32;
            let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / adv.len() as f32;
            assert!(mean.abs() < 1e-4, "segment mean {mean} not centred");
            assert!((var - 1.0).abs() < 1e-3, "segment variance {var} not unit");
        }
        // GAE/returns are segment-independent.
        assert_eq!(buf.returns().len(), 12);
    }

    #[test]
    #[should_panic(expected = "segments must cover every transition")]
    fn segmented_normalisation_rejects_partial_cover() {
        let mut buf = RolloutBuffer::new();
        for i in 0..4 {
            buf.push(transition(i as f32, i == 3));
        }
        buf.compute_advantages_segmented(0.99, 0.95, std::slice::from_ref(&(0..2)));
    }

    #[test]
    fn minibatches_cover_all_indices_exactly_once() {
        let mut buf = RolloutBuffer::new();
        for i in 0..23 {
            buf.push(transition(i as f32, false));
        }
        let batches = buf.minibatch_indices(5, 42);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn minibatch_order_is_deterministic_per_seed() {
        let mut buf = RolloutBuffer::new();
        for _ in 0..16 {
            buf.push(transition(0.0, false));
        }
        assert_eq!(buf.minibatch_indices(4, 7), buf.minibatch_indices(4, 7));
        assert_ne!(buf.minibatch_indices(4, 7), buf.minibatch_indices(4, 8));
    }

    #[test]
    fn shard_minibatch_round_robins_positions_and_covers_the_batch() {
        let mut buf = RolloutBuffer::new();
        for i in 0..10 {
            buf.push(transition(i as f32, false));
        }
        let batch = [7usize, 2, 9, 0, 4];
        let shards = buf.shard_minibatch(&batch, 2);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0], vec![(0, 7), (2, 9), (4, 4)]);
        assert_eq!(shards[1], vec![(1, 2), (3, 0)]);
        // Every position appears exactly once across shards.
        let mut positions: Vec<usize> = shards.iter().flatten().map(|&(p, _)| p).collect();
        positions.sort_unstable();
        assert_eq!(positions, (0..batch.len()).collect::<Vec<_>>());
        // More shards than positions leaves the tail empty but panics never.
        let wide = buf.shard_minibatch(&batch, 8);
        assert!(wide[5].is_empty() && wide[6].is_empty() && wide[7].is_empty());
        assert_eq!(wide.iter().map(Vec::len).sum::<usize>(), batch.len());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shard_minibatch_rejects_out_of_range_indices() {
        let mut buf = RolloutBuffer::<u32>::new();
        buf.push(transition(0.0, true));
        buf.shard_minibatch(&[3], 2);
    }

    #[test]
    fn append_moves_transitions_and_invalidates_derived_data() {
        let mut a = RolloutBuffer::new();
        a.push(transition(1.0, true));
        a.compute_advantages(0.99, 0.95);
        let mut b = RolloutBuffer::new();
        b.push(transition(2.0, false));
        b.push(transition(3.0, true));
        b.compute_advantages(0.99, 0.95);
        a.append(&mut b);
        assert_eq!(a.len(), 3);
        assert!(b.is_empty());
        assert_eq!(a.transitions()[1].reward, 2.0);
        // Stale advantages must not survive the merge on either side.
        assert!(a.advantages().is_empty());
        assert!(b.advantages().is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, true));
        buf.compute_advantages(0.99, 0.95);
        buf.clear();
        assert!(buf.is_empty());
        assert!(buf.advantages().is_empty());
        assert!(buf.returns().is_empty());
    }
}
