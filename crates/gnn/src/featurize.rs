//! Conversion of dataflow graphs into GNN inputs.
//!
//! Following the paper (Section 3.3.2): node attributes are a one-hot
//! encoding of the operator kind (~40 operators); edge attributes are the
//! tensor shape padded to rank 4 and normalised by the constant `M = 4096`
//! (Table 4); the global attribute is initialised to zero and updated by a
//! learnable layer.

use xrlflow_graph::{Graph, NodeId, OpKind};
use xrlflow_tensor::Tensor;

/// The edge-attribute normalisation constant `M` from Table 4.
pub const EDGE_NORMALISER: f32 = 4096.0;

/// A dataflow graph converted to dense GNN inputs.
#[derive(Debug, Clone)]
pub struct GraphFeatures {
    /// `[num_nodes, OpKind::count()]` one-hot operator encoding.
    pub node_features: Tensor,
    /// `[num_edges, 4]` normalised tensor-shape attributes.
    pub edge_features: Tensor,
    /// Source node index of each edge (producer).
    pub edge_src: Vec<usize>,
    /// Destination node index of each edge (consumer).
    pub edge_dst: Vec<usize>,
    /// Number of nodes.
    pub num_nodes: usize,
}

impl GraphFeatures {
    /// Number of edges (including self-loops).
    pub fn num_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Width of the node-feature vectors.
    pub fn node_feature_dim() -> usize {
        OpKind::count()
    }

    /// Extracts features from a graph.
    ///
    /// Self-loop edges (carrying the node's own output shape) are added so
    /// that every node participates in message passing even when it has no
    /// incoming dataflow edge.
    pub fn from_graph(graph: &Graph) -> Self {
        let ids: Vec<NodeId> = graph.iter().map(|(id, _)| id).collect();
        let index_of =
            |id: NodeId| -> usize { ids.binary_search(&id).expect("node id present in sorted id list") };
        let num_nodes = ids.len();
        let feat_dim = OpKind::count();
        let mut node_features = Tensor::zeros(&[num_nodes, feat_dim]);
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut edge_rows: Vec<[f32; 4]> = Vec::new();

        for (row, &id) in ids.iter().enumerate() {
            let node = graph.node(id).expect("live node");
            node_features.set(&[row, node.op.index()], 1.0);
            // Dataflow edges: producer -> this node, attributed with the
            // producer tensor's shape.
            for input in &node.inputs {
                if let Ok(shape) = graph.tensor_shape(*input) {
                    edge_src.push(index_of(input.node));
                    edge_dst.push(row);
                    edge_rows.push(shape.padded4());
                }
            }
            // Self-loop with the node's own (first) output shape.
            if let Some(shape) = node.outputs.first() {
                edge_src.push(row);
                edge_dst.push(row);
                edge_rows.push(shape.padded4());
            }
        }

        let mut edge_features = Tensor::zeros(&[edge_rows.len(), 4]);
        for (i, row) in edge_rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                edge_features.set(&[i, j], v / EDGE_NORMALISER);
            }
        }
        Self { node_features, edge_features, edge_src, edge_dst, num_nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::{OpAttributes, TensorShape};

    fn small_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(TensorShape::new(vec![1, 64]));
        let w = g.add_weight(TensorShape::new(vec![64, 32]));
        let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap();
        g.mark_output(relu.into());
        g
    }

    #[test]
    fn one_hot_encoding_is_correct() {
        let g = small_graph();
        let f = GraphFeatures::from_graph(&g);
        assert_eq!(f.num_nodes, 4);
        assert_eq!(f.node_features.shape(), &[4, OpKind::count()]);
        // Every node has exactly one hot bit.
        for r in 0..4 {
            let row_sum: f32 = f.node_features.row(r).iter().sum();
            assert_eq!(row_sum, 1.0);
        }
    }

    #[test]
    fn edges_include_dataflow_and_self_loops() {
        let g = small_graph();
        let f = GraphFeatures::from_graph(&g);
        // 3 dataflow edges (x->mm, w->mm, mm->relu) + 4 self loops.
        assert_eq!(f.num_edges(), 7);
        assert_eq!(f.edge_features.shape(), &[7, 4]);
        assert_eq!(f.edge_src.len(), f.edge_dst.len());
        for (&s, &d) in f.edge_src.iter().zip(&f.edge_dst) {
            assert!(s < f.num_nodes && d < f.num_nodes);
        }
    }

    #[test]
    fn edge_attributes_are_normalised() {
        let g = small_graph();
        let f = GraphFeatures::from_graph(&g);
        // The x -> mm edge carries shape [1, 64] => padded [0,0,1,64] / 4096.
        let row = f.edge_features.row(0);
        assert!((row[3] - 64.0 / EDGE_NORMALISER).abs() < 1e-6);
        for &v in f.edge_features.data() {
            assert!((0.0..=1.0).contains(&v), "edge attribute {v} not normalised");
        }
    }

    #[test]
    fn feature_dim_matches_operator_count() {
        assert_eq!(GraphFeatures::node_feature_dim(), OpKind::count());
    }
}
