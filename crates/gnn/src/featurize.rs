//! Conversion of dataflow graphs into GNN inputs.
//!
//! Following the paper (Section 3.3.2): node attributes are a one-hot
//! encoding of the operator kind (~40 operators); edge attributes are the
//! tensor shape padded to rank 4 and normalised by the constant `M = 4096`
//! (Table 4); the global attribute is initialised to zero and updated by a
//! learnable layer.
//!
//! Two inference-path optimisations live here:
//!
//! * [`GraphFeatures::from_base_and_patch`] derives a rewrite candidate's
//!   features *incrementally* from the base graph's features plus the
//!   candidate's [`GraphPatch`] — no candidate graph is ever materialised.
//! * [`GraphFeaturesBatch`] stacks many featurised graphs into one
//!   block-diagonal batch so the encoder can embed the current graph and all
//!   of its candidates in a single forward pass.

use std::collections::{HashMap, HashSet};

use xrlflow_graph::{Graph, GraphPatch, NodeId, OpKind, PatchRef, TensorRef, TensorShape};
use xrlflow_tensor::Tensor;

/// The edge-attribute normalisation constant `M` from Table 4.
pub const EDGE_NORMALISER: f32 = 4096.0;

/// A dataflow graph converted to dense GNN inputs.
#[derive(Debug, Clone)]
pub struct GraphFeatures {
    /// `[num_nodes, OpKind::count()]` one-hot operator encoding.
    pub node_features: Tensor,
    /// `[num_edges, 4]` normalised tensor-shape attributes.
    pub edge_features: Tensor,
    /// Source node index of each edge (producer).
    pub edge_src: Vec<usize>,
    /// Destination node index of each edge (consumer).
    pub edge_dst: Vec<usize>,
    /// Number of nodes.
    pub num_nodes: usize,
    /// Start of each node row's contiguous edge block (its incoming dataflow
    /// edges in input order, then its self-loop); length `num_nodes + 1`.
    /// Lets [`GraphFeatures::from_base_and_patch`] copy a node's edge
    /// attributes without re-deriving them from shapes.
    pub edge_offsets: Vec<usize>,
}

/// A node of a patched graph before materialisation: either a surviving base
/// node or the `i`-th node added by the patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PatchedNode {
    Base(NodeId),
    New(usize),
}

/// A tensor of a patched graph before materialisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PatchedTensor {
    Base(TensorRef),
    New { node: usize, port: usize },
}

impl PatchedTensor {
    fn from_patch_ref(r: PatchRef) -> Self {
        match r {
            PatchRef::Base(t) => PatchedTensor::Base(t),
            PatchRef::New { node, port } => PatchedTensor::New { node, port },
        }
    }

    fn node(self) -> PatchedNode {
        match self {
            PatchedTensor::Base(t) => PatchedNode::Base(t.node),
            PatchedTensor::New { node, .. } => PatchedNode::New(node),
        }
    }
}

/// Applies the patch's consumer rewires, in recorded order, to a tensor
/// reference — exactly what `Graph::apply_patch` does to every input slot and
/// graph output when the candidate is materialised. Rewire sources are always
/// base tensors, so references to added nodes are never rewired further.
fn resolve_through_rewires(patch: &GraphPatch, mut r: PatchedTensor) -> PatchedTensor {
    for (from, to) in patch.rewires() {
        if r == PatchedTensor::Base(*from) {
            r = PatchedTensor::from_patch_ref(*to);
        }
    }
    r
}

impl GraphFeatures {
    /// Number of edges (including self-loops).
    pub fn num_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Width of the node-feature vectors.
    pub fn node_feature_dim() -> usize {
        OpKind::count()
    }

    /// Extracts features from a graph.
    ///
    /// Self-loop edges (carrying the node's own output shape) are added so
    /// that every node participates in message passing even when it has no
    /// incoming dataflow edge.
    pub fn from_graph(graph: &Graph) -> Self {
        let ids: Vec<NodeId> = graph.iter().map(|(id, _)| id).collect();
        let index_of =
            |id: NodeId| -> usize { ids.binary_search(&id).expect("node id present in sorted id list") };
        let num_nodes = ids.len();
        let feat_dim = OpKind::count();
        let mut node_features = Tensor::zeros(&[num_nodes, feat_dim]);
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut edge_rows: Vec<[f32; 4]> = Vec::new();
        let mut edge_offsets = Vec::with_capacity(num_nodes + 1);

        for (row, &id) in ids.iter().enumerate() {
            edge_offsets.push(edge_rows.len());
            let node = graph.node(id).expect("live node");
            node_features.set(&[row, node.op.index()], 1.0);
            // Dataflow edges: producer -> this node, attributed with the
            // producer tensor's shape.
            for input in &node.inputs {
                if let Ok(shape) = graph.tensor_shape(*input) {
                    edge_src.push(index_of(input.node));
                    edge_dst.push(row);
                    edge_rows.push(shape.padded4());
                }
            }
            // Self-loop with the node's own (first) output shape.
            if let Some(shape) = node.outputs.first() {
                edge_src.push(row);
                edge_dst.push(row);
                edge_rows.push(shape.padded4());
            }
        }
        edge_offsets.push(edge_rows.len());

        let mut edge_features = Tensor::zeros(&[edge_rows.len(), 4]);
        for (i, row) in edge_rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                edge_features.set(&[i, j], v / EDGE_NORMALISER);
            }
        }
        Self { node_features, edge_features, edge_src, edge_dst, num_nodes, edge_offsets }
    }

    /// Derives the features of the graph a [`GraphPatch`] produces, from the
    /// *base* graph's features — without materialising the patched graph.
    ///
    /// This is the delta-aware half of batched policy evaluation: every
    /// rewrite candidate differs from the current graph by a handful of added
    /// nodes and rewires, so its node one-hots and edge attributes are copied
    /// from `base_features` (rewires preserve tensor shapes by construction,
    /// so edge attributes never change) and only the patch's own nodes are
    /// featurised from scratch. Dead-node elimination and rewire resolution
    /// are replayed symbolically to reproduce the exact row/edge ordering of
    /// [`GraphFeatures::from_graph`] on the materialised graph — the two are
    /// bit-identical, which the per-rule differential tests assert.
    ///
    /// `base_features` must be `GraphFeatures::from_graph(base)`, and `patch`
    /// must have been built against `base`.
    pub fn from_base_and_patch(base: &Graph, base_features: &GraphFeatures, patch: &GraphPatch) -> Self {
        Self::delta_from_base_and_patch(base, base_features, patch).features
    }

    /// Like [`GraphFeatures::from_base_and_patch`], but also returns the
    /// row-level delta bookkeeping ([`CandidateDelta`]) the delta-aware
    /// encoder ([`crate::GnnEncoder::encode_candidates`]) uses to reuse
    /// unchanged node computations across the candidate batch.
    pub fn delta_from_base_and_patch(
        base: &Graph,
        base_features: &GraphFeatures,
        patch: &GraphPatch,
    ) -> CandidateDelta {
        let ids: Vec<NodeId> = base.iter().map(|(id, _)| id).collect();
        debug_assert_eq!(ids.len(), base_features.num_nodes, "base_features must match the base graph");
        let base_row_of =
            |id: NodeId| -> usize { ids.binary_search(&id).expect("node id present in sorted id list") };
        let added = patch.added_nodes();

        // Replay dead-node elimination symbolically: the patched graph's
        // outputs are the base outputs with rewires applied, and a node is
        // live iff it is backwards-reachable from one of them.
        let mut live: HashSet<PatchedNode> = HashSet::new();
        let mut stack: Vec<PatchedNode> = base
            .outputs()
            .iter()
            .map(|&r| resolve_through_rewires(patch, PatchedTensor::Base(r)).node())
            .collect();
        while let Some(n) = stack.pop() {
            if !live.insert(n) {
                continue;
            }
            match n {
                PatchedNode::Base(id) => {
                    let node = base.node(id).expect("live base node");
                    for &r in &node.inputs {
                        stack.push(resolve_through_rewires(patch, PatchedTensor::Base(r)).node());
                    }
                }
                PatchedNode::New(i) => {
                    for &r in &added[i].inputs {
                        stack.push(resolve_through_rewires(patch, PatchedTensor::from_patch_ref(r)).node());
                    }
                }
            }
        }

        // Row order of the materialised graph: surviving base nodes keep
        // their ids (ascending), added nodes splice after all of them in
        // patch order.
        let mut rows: Vec<PatchedNode> = ids
            .iter()
            .filter(|&&id| live.contains(&PatchedNode::Base(id)))
            .map(|&id| PatchedNode::Base(id))
            .collect();
        rows.extend((0..added.len()).filter(|&i| live.contains(&PatchedNode::New(i))).map(PatchedNode::New));
        let row_of: HashMap<PatchedNode, usize> = rows.iter().enumerate().map(|(r, &n)| (n, r)).collect();

        let num_nodes = rows.len();
        let feat_dim = OpKind::count();
        let mut node_features = Tensor::zeros(&[num_nodes, feat_dim]);
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut edge_rows: Vec<[f32; 4]> = Vec::new();
        let mut edge_offsets = Vec::with_capacity(num_nodes + 1);

        // The shape of a patched tensor, for featurising added-node edges.
        let shape_of = |t: PatchedTensor| -> Option<&TensorShape> {
            match t {
                PatchedTensor::Base(r) => base.tensor_shape(r).ok(),
                PatchedTensor::New { node, port } => added.get(node).and_then(|n| n.outputs.get(port)),
            }
        };

        let mut base_rows: Vec<Option<usize>> = Vec::with_capacity(num_nodes);
        let mut changed_rows: Vec<usize> = Vec::new();
        for (row, &n) in rows.iter().enumerate() {
            edge_offsets.push(edge_rows.len());
            match n {
                PatchedNode::Base(id) => {
                    let base_row = base_row_of(id);
                    base_rows.push(Some(base_row));
                    // One-hot row: copy from the base features.
                    node_features.data_mut()[row * feat_dim..(row + 1) * feat_dim]
                        .copy_from_slice(base_features.node_features.row(base_row));
                    // Edge attributes: rewires preserve shapes, so the node's
                    // whole edge block (dataflow edges + self-loop) is copied
                    // verbatim; only the source indices are re-resolved.
                    let node = base.node(id).expect("live base node");
                    let block_start = base_features.edge_offsets[base_row];
                    let block_end = base_features.edge_offsets[base_row + 1];
                    let mut copied = 0usize;
                    let mut rewired = false;
                    for input in &node.inputs {
                        if base.tensor_shape(*input).is_ok() {
                            let resolved = resolve_through_rewires(patch, PatchedTensor::Base(*input));
                            rewired |= resolved != PatchedTensor::Base(*input);
                            edge_src.push(row_of[&resolved.node()]);
                            edge_dst.push(row);
                            copied += 1;
                        }
                    }
                    if !node.outputs.is_empty() {
                        edge_src.push(row);
                        edge_dst.push(row);
                        copied += 1;
                    }
                    if rewired {
                        changed_rows.push(row);
                    }
                    debug_assert_eq!(copied, block_end - block_start, "edge block length mismatch");
                    for e in block_start..block_end {
                        let r = base_features.edge_features.row(e);
                        edge_rows.push([r[0], r[1], r[2], r[3]]);
                    }
                }
                PatchedNode::New(i) => {
                    base_rows.push(None);
                    changed_rows.push(row);
                    let pn = &added[i];
                    node_features.set(&[row, pn.op.index()], 1.0);
                    for &input in &pn.inputs {
                        let resolved = resolve_through_rewires(patch, PatchedTensor::from_patch_ref(input));
                        if let Some(shape) = shape_of(resolved) {
                            edge_src.push(row_of[&resolved.node()]);
                            edge_dst.push(row);
                            // Already normalised: the copied base rows carry
                            // `padded4() / M`, so new rows must match.
                            let p = shape.padded4();
                            edge_rows.push([
                                p[0] / EDGE_NORMALISER,
                                p[1] / EDGE_NORMALISER,
                                p[2] / EDGE_NORMALISER,
                                p[3] / EDGE_NORMALISER,
                            ]);
                        }
                    }
                    if let Some(shape) = pn.outputs.first() {
                        edge_src.push(row);
                        edge_dst.push(row);
                        let p = shape.padded4();
                        edge_rows.push([
                            p[0] / EDGE_NORMALISER,
                            p[1] / EDGE_NORMALISER,
                            p[2] / EDGE_NORMALISER,
                            p[3] / EDGE_NORMALISER,
                        ]);
                    }
                }
            }
        }
        edge_offsets.push(edge_rows.len());

        let mut edge_features = Tensor::zeros(&[edge_rows.len(), 4]);
        for (i, row) in edge_rows.iter().enumerate() {
            edge_features.data_mut()[i * 4..(i + 1) * 4].copy_from_slice(row);
        }
        let features = Self { node_features, edge_features, edge_src, edge_dst, num_nodes, edge_offsets };
        CandidateDelta { features, base_rows, changed_rows }
    }

    /// Sums a node row's incoming edge attributes (its contiguous edge block,
    /// in block order — the same accumulation the encoder's scatter-add
    /// performs) and appends `[incoming ‖ one-hot]` to `out`: one row of the
    /// node-update layer's input matrix.
    pub(crate) fn push_node_input_row(&self, row: usize, out: &mut Vec<f32>) {
        let mut incoming = [0.0f32; 4];
        for e in self.edge_offsets[row]..self.edge_offsets[row + 1] {
            for (acc, &v) in incoming.iter_mut().zip(self.edge_features.row(e)) {
                *acc += v;
            }
        }
        out.extend_from_slice(&incoming);
        out.extend_from_slice(self.node_features.row(row));
    }
}

/// A rewrite candidate's features plus the row-level delta against the base
/// graph, produced by [`GraphFeatures::delta_from_base_and_patch`].
///
/// `base_rows` certifies, per candidate row, which base row carries the
/// *identical* local computation (same one-hot, same incoming edge
/// attributes, same edge-block layout); `changed_rows` lists the rows whose
/// incoming-edge identities differ from the base (rewired consumers and
/// added nodes) — the seed of the dirty region that
/// [`crate::GnnEncoder::encode_candidates`] re-computes per message-passing
/// layer while reusing every other row from the base graph's encoding.
#[derive(Debug, Clone)]
pub struct CandidateDelta {
    /// The candidate's full features (bit-identical to featurising the
    /// materialised candidate).
    pub features: GraphFeatures,
    /// For each candidate row, the base row it mirrors (`None` for rows the
    /// patch added).
    pub base_rows: Vec<Option<usize>>,
    /// Candidate rows whose incoming edges differ from their base row's
    /// (rewired consumers plus all added rows), in ascending order.
    pub changed_rows: Vec<usize>,
}

/// Many featurised graphs stacked into one block-diagonal batch.
///
/// Node and edge rows are concatenated in graph order and edge indices are
/// shifted by each graph's node offset, so the batch is itself one large
/// disconnected graph: message passing never crosses graph boundaries, and a
/// segment index (`node_graph`) maps every node row back to its graph for the
/// per-graph readout. [`crate::GnnEncoder::encode_batch`] runs the whole
/// batch through the GAT stack in a single forward pass.
#[derive(Debug, Clone)]
pub struct GraphFeaturesBatch {
    /// `[total_nodes, OpKind::count()]` stacked one-hot operator encodings.
    pub node_features: Tensor,
    /// `[total_edges, 4]` stacked normalised edge attributes.
    pub edge_features: Tensor,
    /// Source node index of each edge, shifted into batch coordinates.
    pub edge_src: Vec<usize>,
    /// Destination node index of each edge, shifted into batch coordinates.
    pub edge_dst: Vec<usize>,
    /// Graph index of each node row (the readout segment index).
    pub node_graph: Vec<usize>,
    /// Number of graphs in the batch.
    pub num_graphs: usize,
}

impl GraphFeaturesBatch {
    /// Stacks featurised graphs into one block-diagonal batch.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty.
    pub fn new(graphs: &[&GraphFeatures]) -> Self {
        assert!(!graphs.is_empty(), "a feature batch needs at least one graph");
        let total_nodes: usize = graphs.iter().map(|g| g.num_nodes).sum();
        let total_edges: usize = graphs.iter().map(|g| g.num_edges()).sum();
        let mut edge_src = Vec::with_capacity(total_edges);
        let mut edge_dst = Vec::with_capacity(total_edges);
        let mut node_graph = Vec::with_capacity(total_nodes);
        let mut offset = 0usize;
        for (g, f) in graphs.iter().enumerate() {
            edge_src.extend(f.edge_src.iter().map(|&s| s + offset));
            edge_dst.extend(f.edge_dst.iter().map(|&d| d + offset));
            node_graph.extend(std::iter::repeat_n(g, f.num_nodes));
            offset += f.num_nodes;
        }
        let node_tensors: Vec<&Tensor> = graphs.iter().map(|g| &g.node_features).collect();
        let edge_tensors: Vec<&Tensor> = graphs.iter().map(|g| &g.edge_features).collect();
        Self {
            node_features: Tensor::concat_rows(&node_tensors),
            edge_features: Tensor::concat_rows(&edge_tensors),
            edge_src,
            edge_dst,
            node_graph,
            num_graphs: graphs.len(),
        }
    }

    /// Total number of node rows across the batch.
    pub fn num_nodes(&self) -> usize {
        self.node_graph.len()
    }

    /// Total number of edges across the batch.
    pub fn num_edges(&self) -> usize {
        self.edge_src.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
    use xrlflow_graph::OpAttributes;
    use xrlflow_rewrite::{rules::standard_rules, RuleSet};

    fn small_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(TensorShape::new(vec![1, 64]));
        let w = g.add_weight(TensorShape::new(vec![64, 32]));
        let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap();
        g.mark_output(relu.into());
        g
    }

    #[test]
    fn one_hot_encoding_is_correct() {
        let g = small_graph();
        let f = GraphFeatures::from_graph(&g);
        assert_eq!(f.num_nodes, 4);
        assert_eq!(f.node_features.shape(), &[4, OpKind::count()]);
        // Every node has exactly one hot bit.
        for r in 0..4 {
            let row_sum: f32 = f.node_features.row(r).iter().sum();
            assert_eq!(row_sum, 1.0);
        }
    }

    #[test]
    fn edges_include_dataflow_and_self_loops() {
        let g = small_graph();
        let f = GraphFeatures::from_graph(&g);
        // 3 dataflow edges (x->mm, w->mm, mm->relu) + 4 self loops.
        assert_eq!(f.num_edges(), 7);
        assert_eq!(f.edge_features.shape(), &[7, 4]);
        assert_eq!(f.edge_src.len(), f.edge_dst.len());
        for (&s, &d) in f.edge_src.iter().zip(&f.edge_dst) {
            assert!(s < f.num_nodes && d < f.num_nodes);
        }
    }

    #[test]
    fn edge_attributes_are_normalised() {
        let g = small_graph();
        let f = GraphFeatures::from_graph(&g);
        // The x -> mm edge carries shape [1, 64] => padded [0,0,1,64] / 4096.
        let row = f.edge_features.row(0);
        assert!((row[3] - 64.0 / EDGE_NORMALISER).abs() < 1e-6);
        for &v in f.edge_features.data() {
            assert!((0.0..=1.0).contains(&v), "edge attribute {v} not normalised");
        }
    }

    #[test]
    fn feature_dim_matches_operator_count() {
        assert_eq!(GraphFeatures::node_feature_dim(), OpKind::count());
    }

    #[test]
    fn edge_offsets_delimit_per_node_blocks() {
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let f = GraphFeatures::from_graph(&g);
        assert_eq!(f.edge_offsets.len(), f.num_nodes + 1);
        assert_eq!(*f.edge_offsets.last().unwrap(), f.num_edges());
        for row in 0..f.num_nodes {
            for e in f.edge_offsets[row]..f.edge_offsets[row + 1] {
                assert_eq!(f.edge_dst[e], row, "edge {e} not grouped under its destination row");
            }
        }
    }

    /// A synthetic graph triggering the rule families the model zoo does not
    /// exercise (pass-through/pair eliminations, matmul/conv epilogue
    /// fusions, re-association, shared-weight merging), so the differential
    /// test covers every rule of the default rule set.
    fn rule_zoo_graph() -> Graph {
        use xrlflow_graph::Padding;
        let mut g = Graph::new();
        let shape = |d: &[usize]| TensorShape::new(d.to_vec());
        let unary = |g: &mut Graph, op, attrs, input: TensorRef| -> TensorRef {
            g.add_node(op, attrs, vec![input]).unwrap().into()
        };

        // Identity + squeeze/unsqueeze + transpose-pair + reshape-pair chain.
        let x = g.add_input(shape(&[2, 1, 4]));
        let id = unary(&mut g, OpKind::Identity, OpAttributes::default(), x.into());
        let s = unary(&mut g, OpKind::Squeeze, OpAttributes::with_axis(1), id);
        let u = unary(&mut g, OpKind::Unsqueeze, OpAttributes::with_axis(1), s);
        let t1 = unary(&mut g, OpKind::Transpose, OpAttributes::transpose(vec![1, 2, 0]), u);
        let t2 = unary(&mut g, OpKind::Transpose, OpAttributes::transpose(vec![2, 0, 1]), t1);
        let r1 = unary(&mut g, OpKind::Reshape, OpAttributes::reshape(vec![2, 4]), t2);
        let r2 = unary(&mut g, OpKind::Reshape, OpAttributes::reshape(vec![4, 2]), r1);
        g.mark_output(r2);

        // Split–concat round trip.
        let y = g.add_input(shape(&[1, 8, 4, 4]));
        let split = g.add_node(OpKind::Split, OpAttributes::split(1, 2), vec![y.into()]).unwrap();
        let cat = g
            .add_node(
                OpKind::Concat,
                OpAttributes::with_axis(1),
                vec![TensorRef::with_port(split, 0), TensorRef::with_port(split, 1)],
            )
            .unwrap();
        g.mark_output(cat.into());

        // MatMul epilogue fusions, one per fused activation.
        for act in [OpKind::Relu, OpKind::Sigmoid, OpKind::Tanh, OpKind::Gelu] {
            let a = g.add_input(shape(&[4, 16]));
            let w = g.add_weight(shape(&[16, 8]));
            let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![a.into(), w.into()]).unwrap();
            let out = unary(&mut g, act, OpAttributes::default(), mm.into());
            g.mark_output(out);
        }

        // Conv epilogues: sigmoid fusion, bias-add fusion, double batch-norm.
        let img = g.add_input(shape(&[1, 3, 8, 8]));
        let wc1 = g.add_weight(shape(&[16, 3, 3, 3]));
        let conv_attrs = OpAttributes::conv2d([3, 3], [1, 1], Padding::Same, 1);
        let c1 = g.add_node(OpKind::Conv2d, conv_attrs.clone(), vec![img.into(), wc1.into()]).unwrap();
        let sig = unary(&mut g, OpKind::Sigmoid, OpAttributes::default(), c1.into());
        g.mark_output(sig);
        let wc2 = g.add_weight(shape(&[16, 3, 3, 3]));
        let c2 = g.add_node(OpKind::Conv2d, conv_attrs, vec![img.into(), wc2.into()]).unwrap();
        let bias = g.add_weight(shape(&[1, 16, 1, 1]));
        let biased = g.add_node(OpKind::Add, OpAttributes::default(), vec![c2.into(), bias.into()]).unwrap();
        g.mark_output(biased.into());
        let bn_in = g.add_input(shape(&[1, 8, 4, 4]));
        let bn1 = unary(&mut g, OpKind::BatchNorm, OpAttributes::default(), bn_in.into());
        let bn2 = unary(&mut g, OpKind::BatchNorm, OpAttributes::default(), bn1);
        g.mark_output(bn2);

        // MatMul re-association, both directions.
        let a = g.add_input(shape(&[8, 16]));
        let b = g.add_weight(shape(&[16, 32]));
        let c = g.add_weight(shape(&[32, 4]));
        let ab = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![a.into(), b.into()]).unwrap();
        let abc = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![ab.into(), c.into()]).unwrap();
        g.mark_output(abc.into());
        let bc = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![b.into(), c.into()]).unwrap();
        let a2 = g.add_input(shape(&[8, 16]));
        let abc2 = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![a2.into(), bc.into()]).unwrap();
        g.mark_output(abc2.into());

        // Two MatMuls sharing their weight (right operand).
        let w_shared = g.add_weight(shape(&[16, 8]));
        let in1 = g.add_input(shape(&[4, 16]));
        let in2 = g.add_input(shape(&[4, 16]));
        let m1 =
            g.add_node(OpKind::MatMul, OpAttributes::default(), vec![in1.into(), w_shared.into()]).unwrap();
        let m2 =
            g.add_node(OpKind::MatMul, OpAttributes::default(), vec![in2.into(), w_shared.into()]).unwrap();
        g.mark_output(m1.into());
        g.mark_output(m2.into());

        assert!(g.validate().is_ok());
        g
    }

    fn assert_features_identical(delta: &GraphFeatures, eager: &GraphFeatures, context: &str) {
        assert_eq!(delta.num_nodes, eager.num_nodes, "{context}: node count");
        assert_eq!(delta.edge_src, eager.edge_src, "{context}: edge sources");
        assert_eq!(delta.edge_dst, eager.edge_dst, "{context}: edge destinations");
        assert_eq!(delta.edge_offsets, eager.edge_offsets, "{context}: edge offsets");
        // Bit-identical tensors, not approximately equal ones.
        assert_eq!(delta.node_features, eager.node_features, "{context}: node features");
        assert_eq!(delta.edge_features, eager.edge_features, "{context}: edge features");
    }

    #[test]
    fn delta_features_match_materialised_features_for_every_rule() {
        // The per-rule differential property (mirroring the patch-vs-eager
        // test in xrlflow-rewrite): for every rule and application site on
        // the evaluated workloads, featurising via base features + patch must
        // be bit-identical to featurising the materialised candidate.
        let mut covered = std::collections::BTreeSet::new();
        let mut sites_checked = 0usize;
        let mut workloads: Vec<(String, Graph)> =
            [ModelKind::SqueezeNet, ModelKind::Bert, ModelKind::InceptionV3]
                .into_iter()
                .map(|kind| (kind.to_string(), build_model(kind, ModelScale::Bench).unwrap()))
                .collect();
        workloads.push(("rule-zoo".to_string(), rule_zoo_graph()));
        for (name, g) in &workloads {
            let base_features = GraphFeatures::from_graph(g);
            for rule in standard_rules() {
                for site in rule.find_matches(g) {
                    let Ok(patch) = rule.build_patch(g, &site) else { continue };
                    let delta = GraphFeatures::from_base_and_patch(g, &base_features, &patch);
                    let eager = GraphFeatures::from_graph(&g.apply_patch(&patch).unwrap());
                    assert_features_identical(&delta, &eager, &format!("{name}/{}", rule.name()));
                    covered.insert(rule.name());
                    sites_checked += 1;
                }
            }
        }
        assert!(sites_checked >= 20, "expected many application sites, got {sites_checked}");
        // Every rule of the default rule set must be exercised somewhere.
        let all: std::collections::BTreeSet<_> = standard_rules().iter().map(|r| r.name()).collect();
        let missing: Vec<_> = all.difference(&covered).collect();
        assert!(missing.is_empty(), "rules never exercised by the differential test: {missing:?}");
    }

    #[test]
    fn delta_features_match_along_a_trajectory() {
        // Deeper property: keep applying candidates (so the base graph has
        // id holes from dead-node elimination) and re-check the differential
        // at every step.
        let mut g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let rules = RuleSet::standard();
        for step in 0..5 {
            let base_features = GraphFeatures::from_graph(&g);
            let candidates = rules.generate_candidates(&g, 16);
            if candidates.is_empty() {
                break;
            }
            for (i, c) in candidates.iter().enumerate() {
                let delta = GraphFeatures::from_base_and_patch(&g, &base_features, c.patch());
                let eager = GraphFeatures::from_graph(&c.materialize(&g).unwrap());
                assert_features_identical(&delta, &eager, &format!("step {step}, candidate {i}"));
            }
            let chosen = &candidates[step % candidates.len()];
            g = chosen.materialize(&g).unwrap();
        }
    }

    #[test]
    fn batch_stacks_block_diagonally() {
        let a = GraphFeatures::from_graph(&small_graph());
        let bert = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
        let b = GraphFeatures::from_graph(&bert);
        let batch = GraphFeaturesBatch::new(&[&a, &b]);
        assert_eq!(batch.num_graphs, 2);
        assert_eq!(batch.num_nodes(), a.num_nodes + b.num_nodes);
        assert_eq!(batch.num_edges(), a.num_edges() + b.num_edges());
        assert_eq!(batch.node_features.shape(), &[batch.num_nodes(), OpKind::count()]);
        assert_eq!(batch.edge_features.shape(), &[batch.num_edges(), 4]);
        // Graph 0's edges stay in graph 0's node range; graph 1's are shifted.
        for e in 0..a.num_edges() {
            assert!(batch.edge_src[e] < a.num_nodes && batch.edge_dst[e] < a.num_nodes);
        }
        for e in a.num_edges()..batch.num_edges() {
            assert!(batch.edge_src[e] >= a.num_nodes && batch.edge_dst[e] >= a.num_nodes);
        }
        // The segment index partitions node rows by graph.
        assert!(batch.node_graph[..a.num_nodes].iter().all(|&g| g == 0));
        assert!(batch.node_graph[a.num_nodes..].iter().all(|&g| g == 1));
    }

    #[test]
    #[should_panic(expected = "at least one graph")]
    fn empty_batch_is_rejected() {
        let _ = GraphFeaturesBatch::new(&[]);
    }
}
