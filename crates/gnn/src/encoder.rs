//! The graph-embedding network (Section 3.4 of the paper).
//!
//! The encoder is one node-update layer (Eq. 6), `k` graph-attention layers
//! (Eq. 7, GAT) and one global-readout layer (Eq. 8), producing a single
//! graph-level embedding used by the policy and value heads.

use xrlflow_tensor::{
    xavier_uniform, Activation, Linear, ParamId, ParamStore, Tape, Tensor, VarId, XorShiftRng,
};

use crate::featurize::{CandidateDelta, GraphFeatures, GraphFeaturesBatch};

/// Configuration of the graph encoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    /// Hidden embedding width.
    pub hidden_dim: usize,
    /// Number of GAT message-passing layers (`k` in Table 4, default 5).
    pub num_gat_layers: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self { hidden_dim: 64, num_gat_layers: 5 }
    }
}

/// One graph-attention layer (single head), Eq. 7.
///
/// The attention vector `a` of the GAT paper is stored split into its source
/// and destination halves so the edge score `aᵀ [W h_src ‖ W h_dst]` can be
/// computed as `(W h · a_src)_src + (W h · a_dst)_dst` — two `[N, 1]` node
/// projections plus per-edge gathers, instead of materialising an `[E, 2H]`
/// pair matrix per layer.
#[derive(Debug, Clone)]
struct GatLayer {
    /// Node projection `W`.
    proj: Linear,
    /// Source half of the attention vector, `[hidden, 1]`.
    attention_src: ParamId,
    /// Destination half of the attention vector, `[hidden, 1]`.
    attention_dst: ParamId,
}

impl GatLayer {
    fn new(store: &mut ParamStore, name: &str, hidden: usize, rng: &mut XorShiftRng) -> Self {
        let proj = Linear::new(store, &format!("{name}.proj"), hidden, hidden, Activation::Linear, rng);
        let attention_src = store.register(&format!("{name}.attention_src"), xavier_uniform(hidden, 1, rng));
        let attention_dst = store.register(&format!("{name}.attention_dst"), xavier_uniform(hidden, 1, rng));
        Self { proj, attention_src, attention_dst }
    }

    /// Runs message passing: `h'_i = relu(sum_j alpha_ij W h_j)`, with
    /// attention coefficients normalised over each destination node's
    /// incoming edges.
    ///
    /// Works unchanged on a block-diagonal batch: edges never cross graph
    /// boundaries, so gathering, attention normalisation (grouped by
    /// destination node) and aggregation are all per-graph operations.
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: VarId,
        edge_src: &[usize],
        edge_dst: &[usize],
        num_nodes: usize,
    ) -> VarId {
        self.forward_plan(tape, store, h, edge_src, edge_dst, edge_dst, num_nodes)
    }

    /// The general form of [`GatLayer::forward`] used by delta-aware
    /// evaluation: the rows of `h` an edge reads (`edge_src_rows` /
    /// `edge_dst_rows`) are decoupled from the output row the edge
    /// aggregates into (`edge_dst_slots`, over `out_rows` output rows), so a
    /// layer can compute only a dirty subset of nodes while reading
    /// neighbour embeddings shared with the base graph.
    #[allow(clippy::too_many_arguments)]
    fn forward_plan(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        h: VarId,
        edge_src_rows: &[usize],
        edge_dst_rows: &[usize],
        edge_dst_slots: &[usize],
        out_rows: usize,
    ) -> VarId {
        let wh = self.proj.forward(tape, store, h);
        // Per-node attention contributions, gathered per edge — equivalent
        // to scoring [W h_src ‖ W h_dst] against the full attention vector.
        let a_src = tape.param(store, self.attention_src);
        let a_dst = tape.param(store, self.attention_dst);
        let node_src_score = tape.matmul(wh, a_src);
        let node_dst_score = tape.matmul(wh, a_dst);
        let edge_src_score = tape.gather_rows(node_src_score, edge_src_rows);
        let edge_dst_score = tape.gather_rows(node_dst_score, edge_dst_rows);
        let scores = tape.add(edge_src_score, edge_dst_score);
        let scores = tape.leaky_relu(scores, 0.2);
        let alpha = tape.segment_softmax(scores, edge_dst_slots, out_rows);
        let wh_src = tape.gather_rows(wh, edge_src_rows);
        let messages = tape.broadcast_mul_col(alpha, wh_src);
        let aggregated = tape.scatter_add_rows(messages, edge_dst_slots, out_rows);
        tape.relu(aggregated)
    }
}

/// The graph encoder: node update, `k` GAT layers, global readout.
#[derive(Debug, Clone)]
pub struct GnnEncoder {
    config: EncoderConfig,
    node_update: Linear,
    gat_layers: Vec<GatLayer>,
    global_update: Linear,
}

impl GnnEncoder {
    /// Creates an encoder, registering its parameters in `store`.
    pub fn new(store: &mut ParamStore, config: EncoderConfig, rng: &mut XorShiftRng) -> Self {
        let in_dim = GraphFeatures::node_feature_dim() + 4;
        let node_update =
            Linear::new(store, "encoder.node_update", in_dim, config.hidden_dim, Activation::Relu, rng);
        let gat_layers = (0..config.num_gat_layers)
            .map(|i| GatLayer::new(store, &format!("encoder.gat{i}"), config.hidden_dim, rng))
            .collect();
        // Global readout consumes [sum of node embeddings || global attribute],
        // where the global attribute is initialised to zero (paper Section 3.3.2).
        let global_update = Linear::new(
            store,
            "encoder.global_update",
            2 * config.hidden_dim,
            config.hidden_dim,
            Activation::Tanh,
            rng,
        );
        Self { config, node_update, gat_layers, global_update }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Output embedding width.
    pub fn embedding_dim(&self) -> usize {
        self.config.hidden_dim
    }

    /// Encodes a featurised graph into a `[1, hidden_dim]` embedding on the
    /// given tape.
    ///
    /// This is the serial reference path; the agent's per-step policy
    /// evaluation uses [`GnnEncoder::encode_batch`], which embeds a whole
    /// batch of graphs in one forward pass and is bit-identical per graph.
    pub fn encode(&self, tape: &mut Tape, store: &ParamStore, features: &GraphFeatures) -> VarId {
        // Eq. 6: update node attributes from incoming edge attributes.
        let edge_feats = tape.constant_copied(&features.edge_features);
        let incoming = tape.scatter_add_rows(edge_feats, &features.edge_dst, features.num_nodes);
        let node_feats = tape.constant_copied(&features.node_features);
        let combined = tape.concat_cols(incoming, node_feats);
        let mut h = self.node_update.forward(tape, store, combined);

        // Eq. 7: k rounds of graph attention.
        for layer in &self.gat_layers {
            h = layer.forward(tape, store, h, &features.edge_src, &features.edge_dst, features.num_nodes);
        }

        // Eq. 8: global readout over all node embeddings plus the (zero)
        // initial global attribute.
        let summed = tape.sum_rows(h);
        let global0 = tape.zeros(&[1, self.config.hidden_dim]);
        let readout_in = tape.concat_cols(summed, global0);
        self.global_update.forward(tape, store, readout_in)
    }

    /// Encodes a block-diagonal batch of graphs into a `[num_graphs,
    /// hidden_dim]` embedding matrix — one GAT-stack forward pass for the
    /// whole batch instead of one tape walk per graph.
    ///
    /// All layers are shared with [`GnnEncoder::encode`]: the stacked linear
    /// layers compute each row independently and the edge/segment operations
    /// never cross graph boundaries, so row `g` of the result is
    /// bit-identical to serially encoding graph `g` (asserted by the
    /// differential tests).
    pub fn encode_batch(&self, tape: &mut Tape, store: &ParamStore, batch: &GraphFeaturesBatch) -> VarId {
        let num_nodes = batch.num_nodes();
        // Eq. 6 over the stacked node/edge rows.
        let edge_feats = tape.constant_copied(&batch.edge_features);
        let incoming = tape.scatter_add_rows(edge_feats, &batch.edge_dst, num_nodes);
        let node_feats = tape.constant_copied(&batch.node_features);
        let combined = tape.concat_cols(incoming, node_feats);
        let mut h = self.node_update.forward(tape, store, combined);

        // Eq. 7: message passing over the disconnected union graph.
        for layer in &self.gat_layers {
            h = layer.forward(tape, store, h, &batch.edge_src, &batch.edge_dst, num_nodes);
        }

        // Eq. 8: per-graph readout — segment-sum node embeddings by graph
        // index, then apply the shared global-update layer to every graph row.
        let summed = tape.segment_sum_rows(h, &batch.node_graph, batch.num_graphs);
        let global0 = tape.zeros(&[batch.num_graphs, self.config.hidden_dim]);
        let readout_in = tape.concat_cols(summed, global0);
        self.global_update.forward(tape, store, readout_in)
    }

    /// Delta-aware batched policy evaluation: encodes the current graph and
    /// all of its rewrite candidates in one pass, returning a
    /// `[1 + num_candidates, hidden_dim]` embedding matrix (the current
    /// graph's embedding in row 0, candidates in order after it).
    ///
    /// Each candidate differs from the current graph by a small patch, so
    /// per message-passing layer only the candidate rows inside the patch's
    /// grown *dirty region* are re-computed; every other row provably carries
    /// the identical computation tree (same one-hot, same incoming edge
    /// attributes, same neighbour identities — certified by
    /// [`CandidateDelta`]) and is *reused* from the current graph's rows.
    /// Dirtiness is structural, not value-based, so the reuse holds for any
    /// parameter values: results are bit-identical to serially encoding each
    /// materialised candidate, and gradients of a downstream loss are exactly
    /// those of the full computation (clean rows simply route their
    /// contributions through the shared sub-tree).
    ///
    /// The dirty region starts at the patch's changed rows (added nodes and
    /// rewired consumers) and expands one in-neighbourhood hop per GAT layer;
    /// the layer maths itself runs through the same GAT-layer code as
    /// [`GnnEncoder::encode`] on a compact `[rows(current) + dirty]` block.
    pub fn encode_candidates(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        current: &GraphFeatures,
        deltas: &[CandidateDelta],
    ) -> VarId {
        let n = current.num_nodes;
        let in_dim = GraphFeatures::node_feature_dim() + 4;

        // Dirty flags after the node-update layer: only added rows have
        // inputs differing from their base row. `slots[k][row]` is the
        // absolute row of candidate k's dirty `row` in the current compact
        // block (rows 0..n belong to the current graph).
        let mut dirty: Vec<Vec<bool>> =
            deltas.iter().map(|d| d.base_rows.iter().map(Option::is_none).collect()).collect();
        let mut slots: Vec<Vec<usize>> = deltas.iter().map(|d| vec![usize::MAX; d.base_rows.len()]).collect();

        // Node-update inputs for the unique rows: the current graph's rows
        // followed by every candidate's added rows (`[incoming ‖ one-hot]`,
        // accumulated exactly like the serial scatter-add path).
        let mut input_data: Vec<f32> = Vec::with_capacity((n + 8) * in_dim);
        for row in 0..n {
            current.push_node_input_row(row, &mut input_data);
        }
        let mut rows = n;
        for (k, delta) in deltas.iter().enumerate() {
            for row in 0..delta.features.num_nodes {
                if dirty[k][row] {
                    slots[k][row] = rows;
                    rows += 1;
                    delta.features.push_node_input_row(row, &mut input_data);
                }
            }
        }
        let inputs = tape.constant(Tensor::from_vec(input_data, &[rows, in_dim]));
        let mut h = self.node_update.forward(tape, store, inputs);

        // Per-layer scratch, allocated once and reused across the GAT stack
        // (the layer loop is the encoder's hot loop — see the tensor hot-path
        // rules in ROADMAP.md).
        let mut next_dirty: Vec<Vec<bool>> = deltas.iter().map(|d| vec![false; d.base_rows.len()]).collect();
        let mut next_slots: Vec<Vec<usize>> =
            deltas.iter().map(|d| vec![usize::MAX; d.base_rows.len()]).collect();
        let mut edge_src_rows: Vec<usize> = Vec::new();
        let mut edge_dst_rows: Vec<usize> = Vec::new();
        let mut edge_dst_slots: Vec<usize> = Vec::new();

        for (layer_index, layer) in self.gat_layers.iter().enumerate() {
            // Grow the dirty region: a row is dirty after this layer when its
            // incoming-edge identities changed (seeded once, from the patch)
            // or any in-neighbour — including itself, via its self-loop — was
            // dirty before the layer.
            for (k, delta) in deltas.iter().enumerate() {
                let flags = &mut next_dirty[k];
                flags.iter_mut().for_each(|f| *f = false);
                if layer_index == 0 {
                    for &row in &delta.changed_rows {
                        flags[row] = true;
                    }
                }
            }
            for (k, delta) in deltas.iter().enumerate() {
                let f = &delta.features;
                for (&src, &dst) in f.edge_src.iter().zip(&f.edge_dst) {
                    if dirty[k][src] {
                        next_dirty[k][dst] = true;
                    }
                }
            }

            // The layer's edge plan: the current graph's full edge list, then
            // every edge into a dirty destination. Clean neighbours read the
            // current graph's rows (their embeddings are identical), dirty
            // neighbours read their compact slots.
            for s in next_slots.iter_mut() {
                s.iter_mut().for_each(|slot| *slot = usize::MAX);
            }
            let mut out_rows = n;
            edge_src_rows.clear();
            edge_src_rows.extend_from_slice(&current.edge_src);
            edge_dst_rows.clear();
            edge_dst_rows.extend_from_slice(&current.edge_dst);
            edge_dst_slots.clear();
            edge_dst_slots.extend_from_slice(&current.edge_dst);
            for (k, delta) in deltas.iter().enumerate() {
                let f = &delta.features;
                let row_of = |row: usize, dirty: &[bool], slots: &[usize]| -> usize {
                    if dirty[row] {
                        slots[row]
                    } else {
                        delta.base_rows[row].expect("clean rows always mirror a base row")
                    }
                };
                for row in 0..f.num_nodes {
                    if !next_dirty[k][row] {
                        continue;
                    }
                    next_slots[k][row] = out_rows;
                    out_rows += 1;
                    let dst_row = row_of(row, &dirty[k], &slots[k]);
                    for e in f.edge_offsets[row]..f.edge_offsets[row + 1] {
                        edge_src_rows.push(row_of(f.edge_src[e], &dirty[k], &slots[k]));
                        edge_dst_rows.push(dst_row);
                        edge_dst_slots.push(next_slots[k][row]);
                    }
                }
            }
            h = layer.forward_plan(tape, store, h, &edge_src_rows, &edge_dst_rows, &edge_dst_slots, out_rows);
            std::mem::swap(&mut dirty, &mut next_dirty);
            std::mem::swap(&mut slots, &mut next_slots);
        }

        // Per-graph readout: gather every graph's rows (clean candidate rows
        // from the current graph's block) in row order and segment-sum them,
        // reproducing the serial row-order accumulation bit for bit.
        let mut gather: Vec<usize> = (0..n).collect();
        let mut segments: Vec<usize> = vec![0; n];
        for (k, delta) in deltas.iter().enumerate() {
            for row in 0..delta.features.num_nodes {
                gather.push(if dirty[k][row] {
                    slots[k][row]
                } else {
                    delta.base_rows[row].expect("clean rows always mirror a base row")
                });
                segments.push(k + 1);
            }
        }
        let all_rows = tape.gather_rows(h, &gather);
        let summed = tape.segment_sum_rows(all_rows, &segments, deltas.len() + 1);
        let global0 = tape.zeros(&[deltas.len() + 1, self.config.hidden_dim]);
        let readout_in = tape.concat_cols(summed, global0);
        self.global_update.forward(tape, store, readout_in)
    }

    /// Convenience: encodes a graph without keeping the tape (inference
    /// only), returning the raw embedding values.
    pub fn encode_value(&self, store: &ParamStore, features: &GraphFeatures) -> Tensor {
        let mut tape = Tape::new();
        let z = self.encode(&mut tape, store, features);
        tape.value(z).clone()
    }

    /// Convenience: encodes a batch without keeping the tape (inference
    /// only), returning the raw `[num_graphs, hidden_dim]` embedding values.
    pub fn encode_batch_value(&self, store: &ParamStore, batch: &GraphFeaturesBatch) -> Tensor {
        let mut tape = Tape::new();
        let z = self.encode_batch(&mut tape, store, batch);
        tape.value(z).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
    use xrlflow_graph::{Graph, OpAttributes, OpKind, TensorShape};
    use xrlflow_tensor::Adam;

    fn tiny_config() -> EncoderConfig {
        EncoderConfig { hidden_dim: 16, num_gat_layers: 2 }
    }

    fn small_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(TensorShape::new(vec![1, 64]));
        let w = g.add_weight(TensorShape::new(vec![64, 32]));
        let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap();
        g.mark_output(relu.into());
        g
    }

    #[test]
    fn encoding_has_expected_shape() {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(0);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let features = GraphFeatures::from_graph(&small_graph());
        let emb = encoder.encode_value(&store, &features);
        assert_eq!(emb.shape(), &[1, 16]);
        assert!(emb.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn different_graphs_get_different_embeddings() {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(1);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let a = encoder.encode_value(&store, &GraphFeatures::from_graph(&small_graph()));
        let bert = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
        let b = encoder.encode_value(&store, &GraphFeatures::from_graph(&bert));
        let diff: f32 = a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "embeddings should distinguish graphs");
    }

    #[test]
    fn encoder_is_deterministic() {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(2);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let features = GraphFeatures::from_graph(&small_graph());
        assert_eq!(encoder.encode_value(&store, &features), encoder.encode_value(&store, &features));
    }

    #[test]
    fn batched_encoding_matches_serial_per_graph() {
        // The block-diagonal batch must reproduce the serial path exactly —
        // bit-identical rows, not approximately equal ones.
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(5);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let graphs = [
            small_graph(),
            build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap(),
            build_model(ModelKind::Bert, ModelScale::Bench).unwrap(),
        ];
        let features: Vec<GraphFeatures> = graphs.iter().map(GraphFeatures::from_graph).collect();
        let refs: Vec<&GraphFeatures> = features.iter().collect();
        let batch = GraphFeaturesBatch::new(&refs);
        let batched = encoder.encode_batch_value(&store, &batch);
        assert_eq!(batched.shape(), &[graphs.len(), encoder.embedding_dim()]);
        for (g, f) in features.iter().enumerate() {
            let serial = encoder.encode_value(&store, f);
            assert_eq!(
                batched.row(g),
                serial.data(),
                "batched embedding of graph {g} differs from the serial encode"
            );
        }
    }

    #[test]
    fn delta_aware_candidate_encoding_matches_serial_per_candidate() {
        // encode_candidates reuses clean rows across the batch; every
        // embedding must still be bit-identical to serially encoding the
        // materialised candidate from scratch.
        use xrlflow_rewrite::RuleSet;
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(7);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        for kind in [ModelKind::SqueezeNet, ModelKind::Bert] {
            let g = build_model(kind, ModelScale::Bench).unwrap();
            let current = GraphFeatures::from_graph(&g);
            let candidates = RuleSet::standard().generate_candidates(&g, 16);
            assert!(!candidates.is_empty());
            let deltas: Vec<_> = candidates
                .iter()
                .map(|c| GraphFeatures::delta_from_base_and_patch(&g, &current, c.patch()))
                .collect();
            let mut tape = Tape::new();
            let z = encoder.encode_candidates(&mut tape, &store, &current, &deltas);
            let embeddings = tape.value(z).clone();
            assert_eq!(embeddings.shape(), &[candidates.len() + 1, encoder.embedding_dim()]);
            let serial_current = encoder.encode_value(&store, &current);
            assert_eq!(embeddings.row(0), serial_current.data(), "{kind}: current-graph embedding");
            for (i, c) in candidates.iter().enumerate() {
                let materialised = c.materialize(&g).unwrap();
                let serial = encoder.encode_value(&store, &GraphFeatures::from_graph(&materialised));
                assert_eq!(
                    embeddings.row(i + 1),
                    serial.data(),
                    "{kind}: candidate {i} ({}) embedding diverges from the serial encode",
                    c.rule_name
                );
            }
        }
    }

    #[test]
    fn delta_aware_candidate_encoding_gradients_flow() {
        use xrlflow_rewrite::RuleSet;
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(8);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let g = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
        let current = GraphFeatures::from_graph(&g);
        let candidates = RuleSet::standard().generate_candidates(&g, 4);
        let deltas: Vec<_> = candidates
            .iter()
            .map(|c| GraphFeatures::delta_from_base_and_patch(&g, &current, c.patch()))
            .collect();
        let mut tape = Tape::new();
        let z = encoder.encode_candidates(&mut tape, &store, &current, &deltas);
        let sq = tape.mul(z, z);
        let loss = tape.sum_all(sq);
        store.zero_grad();
        tape.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0, "no gradient reached the encoder through encode_candidates");
    }

    #[test]
    fn batched_encoding_gradients_flow() {
        // Backward through encode_batch must reach the encoder parameters.
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(6);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let a = GraphFeatures::from_graph(&small_graph());
        let b = GraphFeatures::from_graph(&build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap());
        let batch = GraphFeaturesBatch::new(&[&a, &b]);
        let mut tape = Tape::new();
        let z = encoder.encode_batch(&mut tape, &store, &batch);
        let sq = tape.mul(z, z);
        let loss = tape.sum_all(sq);
        store.zero_grad();
        tape.backward(loss, &mut store);
        assert!(store.grad_norm() > 0.0, "no gradient reached the encoder through encode_batch");
    }

    #[test]
    fn gradients_flow_through_the_whole_encoder() {
        // Train the encoder to push the embedding's first component towards a
        // target: all layers must receive gradients for the loss to drop.
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(3);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let features = GraphFeatures::from_graph(&small_graph());
        let mut adam = Adam::new(0.01);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..30 {
            let mut tape = Tape::new();
            let z = encoder.encode(&mut tape, &store, &features);
            let first = tape.pick(z, 0);
            let target = tape.constant(Tensor::scalar(0.75));
            let diff = tape.sub(first, target);
            let loss = tape.mul(diff, diff);
            last_loss = tape.value(loss).item();
            if first_loss.is_none() {
                first_loss = Some(last_loss);
            }
            store.zero_grad();
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        assert!(last_loss < first_loss.unwrap(), "loss did not decrease: {last_loss}");
    }

    #[test]
    fn parameter_count_scales_with_layers() {
        let mut store_small = ParamStore::new();
        let mut rng = XorShiftRng::new(4);
        let _ =
            GnnEncoder::new(&mut store_small, EncoderConfig { hidden_dim: 16, num_gat_layers: 1 }, &mut rng);
        let mut store_large = ParamStore::new();
        let mut rng = XorShiftRng::new(4);
        let _ =
            GnnEncoder::new(&mut store_large, EncoderConfig { hidden_dim: 16, num_gat_layers: 5 }, &mut rng);
        assert!(store_large.num_scalars() > store_small.num_scalars());
    }
}
