//! The graph-embedding network (Section 3.4 of the paper).
//!
//! The encoder is one node-update layer (Eq. 6), `k` graph-attention layers
//! (Eq. 7, GAT) and one global-readout layer (Eq. 8), producing a single
//! graph-level embedding used by the policy and value heads.

use xrlflow_tensor::{
    xavier_uniform, Activation, Linear, ParamId, ParamStore, Tape, Tensor, VarId, XorShiftRng,
};

use crate::featurize::GraphFeatures;

/// Configuration of the graph encoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncoderConfig {
    /// Hidden embedding width.
    pub hidden_dim: usize,
    /// Number of GAT message-passing layers (`k` in Table 4, default 5).
    pub num_gat_layers: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self { hidden_dim: 64, num_gat_layers: 5 }
    }
}

/// One graph-attention layer (single head), Eq. 7.
#[derive(Debug, Clone)]
struct GatLayer {
    /// Node projection `W`.
    proj: Linear,
    /// Attention vector `a` of size `[2 * hidden, 1]`.
    attention: ParamId,
}

impl GatLayer {
    fn new(store: &mut ParamStore, name: &str, hidden: usize, rng: &mut XorShiftRng) -> Self {
        let proj = Linear::new(store, &format!("{name}.proj"), hidden, hidden, Activation::Linear, rng);
        let attention = store.register(&format!("{name}.attention"), xavier_uniform(2 * hidden, 1, rng));
        Self { proj, attention }
    }

    /// Runs message passing: `h'_i = relu(sum_j alpha_ij W h_j)`, with
    /// attention coefficients normalised over each destination node's
    /// incoming edges.
    fn forward(&self, tape: &mut Tape, store: &ParamStore, h: VarId, features: &GraphFeatures) -> VarId {
        let wh = self.proj.forward(tape, store, h);
        let wh_src = tape.gather_rows(wh, &features.edge_src);
        let wh_dst = tape.gather_rows(wh, &features.edge_dst);
        let pair = tape.concat_cols(wh_src, wh_dst);
        let a = tape.param(store, self.attention);
        let scores = tape.matmul(pair, a);
        let scores = tape.leaky_relu(scores, 0.2);
        let alpha = tape.segment_softmax(scores, &features.edge_dst, features.num_nodes);
        let messages = tape.broadcast_mul_col(alpha, wh_src);
        let aggregated = tape.scatter_add_rows(messages, &features.edge_dst, features.num_nodes);
        tape.relu(aggregated)
    }
}

/// The graph encoder: node update, `k` GAT layers, global readout.
#[derive(Debug, Clone)]
pub struct GnnEncoder {
    config: EncoderConfig,
    node_update: Linear,
    gat_layers: Vec<GatLayer>,
    global_update: Linear,
}

impl GnnEncoder {
    /// Creates an encoder, registering its parameters in `store`.
    pub fn new(store: &mut ParamStore, config: EncoderConfig, rng: &mut XorShiftRng) -> Self {
        let in_dim = GraphFeatures::node_feature_dim() + 4;
        let node_update =
            Linear::new(store, "encoder.node_update", in_dim, config.hidden_dim, Activation::Relu, rng);
        let gat_layers = (0..config.num_gat_layers)
            .map(|i| GatLayer::new(store, &format!("encoder.gat{i}"), config.hidden_dim, rng))
            .collect();
        // Global readout consumes [sum of node embeddings || global attribute],
        // where the global attribute is initialised to zero (paper Section 3.3.2).
        let global_update = Linear::new(
            store,
            "encoder.global_update",
            2 * config.hidden_dim,
            config.hidden_dim,
            Activation::Tanh,
            rng,
        );
        Self { config, node_update, gat_layers, global_update }
    }

    /// The encoder configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Output embedding width.
    pub fn embedding_dim(&self) -> usize {
        self.config.hidden_dim
    }

    /// Encodes a featurised graph into a `[1, hidden_dim]` embedding on the
    /// given tape.
    pub fn encode(&self, tape: &mut Tape, store: &ParamStore, features: &GraphFeatures) -> VarId {
        // Eq. 6: update node attributes from incoming edge attributes.
        let edge_feats = tape.constant(features.edge_features.clone());
        let incoming = tape.scatter_add_rows(edge_feats, &features.edge_dst, features.num_nodes);
        let node_feats = tape.constant(features.node_features.clone());
        let combined = tape.concat_cols(incoming, node_feats);
        let mut h = self.node_update.forward(tape, store, combined);

        // Eq. 7: k rounds of graph attention.
        for layer in &self.gat_layers {
            h = layer.forward(tape, store, h, features);
        }

        // Eq. 8: global readout over all node embeddings plus the (zero)
        // initial global attribute.
        let summed = tape.sum_rows(h);
        let global0 = tape.constant(Tensor::zeros(&[1, self.config.hidden_dim]));
        let readout_in = tape.concat_cols(summed, global0);
        self.global_update.forward(tape, store, readout_in)
    }

    /// Convenience: encodes a graph without keeping the tape (inference
    /// only), returning the raw embedding values.
    pub fn encode_value(&self, store: &ParamStore, features: &GraphFeatures) -> Tensor {
        let mut tape = Tape::new();
        let z = self.encode(&mut tape, store, features);
        tape.value(z).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
    use xrlflow_graph::{Graph, OpAttributes, OpKind, TensorShape};
    use xrlflow_tensor::Adam;

    fn tiny_config() -> EncoderConfig {
        EncoderConfig { hidden_dim: 16, num_gat_layers: 2 }
    }

    fn small_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.add_input(TensorShape::new(vec![1, 64]));
        let w = g.add_weight(TensorShape::new(vec![64, 32]));
        let mm = g.add_node(OpKind::MatMul, OpAttributes::default(), vec![x.into(), w.into()]).unwrap();
        let relu = g.add_node(OpKind::Relu, OpAttributes::default(), vec![mm.into()]).unwrap();
        g.mark_output(relu.into());
        g
    }

    #[test]
    fn encoding_has_expected_shape() {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(0);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let features = GraphFeatures::from_graph(&small_graph());
        let emb = encoder.encode_value(&store, &features);
        assert_eq!(emb.shape(), &[1, 16]);
        assert!(emb.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn different_graphs_get_different_embeddings() {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(1);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let a = encoder.encode_value(&store, &GraphFeatures::from_graph(&small_graph()));
        let bert = build_model(ModelKind::Bert, ModelScale::Bench).unwrap();
        let b = encoder.encode_value(&store, &GraphFeatures::from_graph(&bert));
        let diff: f32 = a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-4, "embeddings should distinguish graphs");
    }

    #[test]
    fn encoder_is_deterministic() {
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(2);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let features = GraphFeatures::from_graph(&small_graph());
        assert_eq!(encoder.encode_value(&store, &features), encoder.encode_value(&store, &features));
    }

    #[test]
    fn gradients_flow_through_the_whole_encoder() {
        // Train the encoder to push the embedding's first component towards a
        // target: all layers must receive gradients for the loss to drop.
        let mut store = ParamStore::new();
        let mut rng = XorShiftRng::new(3);
        let encoder = GnnEncoder::new(&mut store, tiny_config(), &mut rng);
        let features = GraphFeatures::from_graph(&small_graph());
        let mut adam = Adam::new(0.01);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..30 {
            let mut tape = Tape::new();
            let z = encoder.encode(&mut tape, &store, &features);
            let first = tape.pick(z, 0);
            let target = tape.constant(Tensor::scalar(0.75));
            let diff = tape.sub(first, target);
            let loss = tape.mul(diff, diff);
            last_loss = tape.value(loss).item();
            if first_loss.is_none() {
                first_loss = Some(last_loss);
            }
            store.zero_grad();
            tape.backward(loss, &mut store);
            adam.step(&mut store);
        }
        assert!(last_loss < first_loss.unwrap(), "loss did not decrease: {last_loss}");
    }

    #[test]
    fn parameter_count_scales_with_layers() {
        let mut store_small = ParamStore::new();
        let mut rng = XorShiftRng::new(4);
        let _ =
            GnnEncoder::new(&mut store_small, EncoderConfig { hidden_dim: 16, num_gat_layers: 1 }, &mut rng);
        let mut store_large = ParamStore::new();
        let mut rng = XorShiftRng::new(4);
        let _ =
            GnnEncoder::new(&mut store_large, EncoderConfig { hidden_dim: 16, num_gat_layers: 5 }, &mut rng);
        assert!(store_large.num_scalars() > store_small.num_scalars());
    }
}
