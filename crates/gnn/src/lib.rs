//! # xrlflow-gnn
//!
//! Graph featurisation and the graph-embedding network of X-RLflow: a node
//! update layer, `k` graph-attention (GAT) layers and a global readout,
//! exactly as in Section 3.4 of the paper, built on the `xrlflow-tensor`
//! autodiff tape.
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow_gnn::{EncoderConfig, GnnEncoder, GraphFeatures};
//! use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
//! use xrlflow_tensor::{ParamStore, XorShiftRng};
//!
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let mut store = ParamStore::new();
//! let mut rng = XorShiftRng::new(0);
//! let encoder = GnnEncoder::new(&mut store, EncoderConfig::default(), &mut rng);
//! let features = GraphFeatures::from_graph(&graph);
//! let embedding = encoder.encode_value(&store, &features);
//! assert_eq!(embedding.shape(), &[1, 64]);
//! ```

#![warn(missing_docs)]

mod encoder;
mod featurize;

pub use encoder::{EncoderConfig, GnnEncoder};
pub use featurize::{CandidateDelta, GraphFeatures, GraphFeaturesBatch, EDGE_NORMALISER};
