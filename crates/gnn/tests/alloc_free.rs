//! Proves the steady-state GNN forward pass is allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after two
//! warm-up passes populate the tape's buffer pool, a full recycle + encode
//! cycle must perform **zero** heap allocations — the contract behind the
//! tensor hot-path rules in ROADMAP.md. This file holds exactly one test so
//! no concurrent test thread can touch the counter mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use xrlflow_gnn::{EncoderConfig, GnnEncoder, GraphFeatures};
use xrlflow_graph::models::{build_model, ModelKind, ModelScale};
use xrlflow_tensor::{ParamStore, Tape, XorShiftRng};

/// Counts every allocation (and reallocation) routed through the global
/// allocator; frees are not counted — the test only cares that the
/// steady-state pass requests no new memory.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_gnn_forward_pass_allocates_nothing() {
    let mut store = ParamStore::new();
    let mut rng = XorShiftRng::new(0);
    let config = EncoderConfig { hidden_dim: 32, num_gat_layers: 3 };
    let encoder = GnnEncoder::new(&mut store, config, &mut rng);
    let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
    let features = GraphFeatures::from_graph(&graph);

    // Reference embedding from a fresh tape, before any pooling kicks in.
    let mut reference_tape = Tape::new();
    let reference = encoder.encode(&mut reference_tape, &store, &features);
    let reference = reference_tape.value(reference).clone();

    // Two warm-up passes: the first recycle seeds the pool with the fresh
    // pass's buffers, the second pass proves every take finds a fit and
    // settles the pool containers' capacities.
    let mut tape = Tape::new();
    for _ in 0..2 {
        tape.recycle();
        let _ = encoder.encode(&mut tape, &store, &features);
    }

    // The measured steady-state cycle: recycle + full forward pass.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    tape.recycle();
    let z = encoder.encode(&mut tape, &store, &features);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "the steady-state GNN forward pass must not allocate (saw {} allocations)",
        after - before
    );
    // The recycled pass still computes the exact same embedding.
    assert_eq!(tape.value(z).data(), reference.data(), "recycled pass diverged from the fresh pass");
}
