//! # xrlflow
//!
//! Umbrella crate for the X-RLflow reproduction (MLSys 2023): tensor graph
//! superoptimisation with graph reinforcement learning.
//!
//! This crate re-exports every subsystem so examples and downstream users
//! can depend on a single crate:
//!
//! * [`graph`] — the dataflow-graph IR and the model zoo,
//! * [`rewrite`] — TASO-style rewrite rules and candidate generation,
//! * [`cost`] — the per-operator cost model and the end-to-end latency simulator,
//! * [`taso`] — greedy / backtracking / PET baselines,
//! * [`egraph`] — the equality-saturation (Tensat) baseline,
//! * [`tensor`], [`gnn`], [`rl`] — the learning stack,
//! * [`mod@env`] — the Gym-style graph-transformation environment,
//! * [`core`] — the X-RLflow agent, trainer and optimiser,
//! * [`rollout`] — the parallel rollout engine (multi-worker episode
//!   collection with snapshot-based parameter broadcast),
//! * [`serve`] — optimisation-as-a-service: JSON graph ingestion, a
//!   persistent result cache and snapshot-replica policy serving,
//! * [`obs`] — zero-overhead telemetry: the process-wide metrics registry,
//!   RAII phase spans and structured JSON run traces every phase above
//!   records into.
//!
//! Fallible APIs across the stack surface their failures through
//! [`XrlflowError`], the umbrella error type.
//!
//! ## Paper-to-code map
//!
//! Where each piece of the source paper (X-RLflow, MLSys 2023) lives in
//! this tree:
//!
//! | Paper | Code |
//! |---|---|
//! | Figure 3 policy network — GAT encoder over the operator graph feeding actor/critic heads | `crates/gnn/src/encoder.rs` (message passing) + `crates/gnn/src/featurize.rs` (node features); assembled into the agent in `crates/core/src/agent.rs` (`XrlflowAgent`) |
//! | §3 environment — graph transformation as an MDP: states are graphs, actions are rewrite-rule applications, episodes end on no-op | `crates/env/src/environment.rs` ([`mod@env`]'s `Environment`) over the rewrite-candidate generator in [`rewrite`] |
//! | §3.3 cost model and reward — per-operator latency summed over the graph, reward shaped by relative improvement | `crates/cost/src/model.rs` (`CostModel`) and the end-to-end `InferenceSimulator` in [`cost`]; reward shaping in the environment's `step` |
//! | §3 PPO training with GAE | `crates/rl/src/ppo.rs`, `gae.rs`, `buffer.rs` ([`rl`]) driven by the trainer in `crates/core/src/trainer.rs` |
//! | §4 evaluation baselines — TASO greedy/backtracking, equality saturation | [`taso`] and [`egraph`] |
//! | §1 deployment: offline optimisation amortised across inference — the trained policy served behind a result cache | [`serve`] (`OptimizeService` + the HTTP front end; see `docs/OPERATIONS.md`) |
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow::core::{XrlflowConfig, XrlflowSystem};
//! use xrlflow::graph::models::{build_model, ModelKind, ModelScale};
//!
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let mut system = XrlflowSystem::new(XrlflowConfig::smoke_test(), 42);
//! let report = system.train_on(&graph, 2);
//! assert!(report.episodes.len() == 2);
//! ```

pub use xrlflow_core as core;
pub use xrlflow_cost as cost;
pub use xrlflow_egraph as egraph;
pub use xrlflow_env as env;
pub use xrlflow_gnn as gnn;
pub use xrlflow_graph as graph;
pub use xrlflow_obs as obs;
pub use xrlflow_rewrite as rewrite;
pub use xrlflow_rl as rl;
pub use xrlflow_rollout as rollout;
pub use xrlflow_serve as serve;
pub use xrlflow_taso as taso;
pub use xrlflow_tensor as tensor;

use std::fmt;

/// The umbrella error: every typed failure the public API can produce,
/// unified so applications can `?` across subsystem boundaries.
///
/// # Examples
///
/// ```
/// use xrlflow::graph::Graph;
/// use xrlflow::XrlflowError;
///
/// fn import(text: &str) -> Result<Graph, XrlflowError> {
///     Ok(Graph::from_json(text)?)
/// }
///
/// let err = import("{\"format\": \"bogus\"}").unwrap_err();
/// assert!(matches!(err, XrlflowError::Graph(_)));
/// assert!(err.to_string().contains("graph"));
/// ```
#[derive(Debug)]
pub enum XrlflowError {
    /// A graph failed construction, validation or JSON import.
    Graph(graph::GraphError),
    /// A parameter snapshot could not be read or did not match the model.
    Snapshot(tensor::SnapshotError),
    /// The equality-saturation baseline failed.
    EGraph(egraph::EGraphError),
    /// A configuration was rejected by the validating builder.
    Config(core::ConfigError),
    /// The optimisation service rejected a request or cache snapshot.
    Serve(serve::ServeError),
}

impl fmt::Display for XrlflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XrlflowError::Graph(e) => write!(f, "graph error: {e}"),
            XrlflowError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            XrlflowError::EGraph(e) => write!(f, "e-graph error: {e}"),
            XrlflowError::Config(e) => write!(f, "config error: {e}"),
            XrlflowError::Serve(e) => write!(f, "serve error: {e}"),
        }
    }
}

impl std::error::Error for XrlflowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XrlflowError::Graph(e) => Some(e),
            XrlflowError::Snapshot(e) => Some(e),
            XrlflowError::EGraph(e) => Some(e),
            XrlflowError::Config(e) => Some(e),
            XrlflowError::Serve(e) => Some(e),
        }
    }
}

impl From<graph::GraphError> for XrlflowError {
    fn from(e: graph::GraphError) -> Self {
        XrlflowError::Graph(e)
    }
}

impl From<tensor::SnapshotError> for XrlflowError {
    fn from(e: tensor::SnapshotError) -> Self {
        XrlflowError::Snapshot(e)
    }
}

impl From<egraph::EGraphError> for XrlflowError {
    fn from(e: egraph::EGraphError) -> Self {
        XrlflowError::EGraph(e)
    }
}

impl From<core::ConfigError> for XrlflowError {
    fn from(e: core::ConfigError) -> Self {
        XrlflowError::Config(e)
    }
}

impl From<serve::ServeError> for XrlflowError {
    fn from(e: serve::ServeError) -> Self {
        XrlflowError::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn every_subsystem_error_converts_and_chains() {
        let graph_err: XrlflowError = graph::Graph::from_json("nope").unwrap_err().into();
        assert!(matches!(graph_err, XrlflowError::Graph(_)));
        assert!(graph_err.source().is_some());

        let snap_err: XrlflowError = tensor::ParamSnapshot::from_bytes(&[0, 1, 2]).unwrap_err().into();
        assert!(matches!(snap_err, XrlflowError::Snapshot(_)));
        assert!(snap_err.to_string().contains("snapshot"));

        let cfg_err: XrlflowError = core::XrlflowConfig::builder().num_workers(0).build().unwrap_err().into();
        assert!(matches!(cfg_err, XrlflowError::Config(_)));
        assert!(cfg_err.to_string().contains("num_workers"));

        let serve_err: XrlflowError = serve::ResultCache::from_json("nope").unwrap_err().into();
        assert!(matches!(serve_err, XrlflowError::Serve(_)));
        assert!(serve_err.source().is_some());
    }

    #[test]
    fn question_mark_crosses_subsystem_boundaries() {
        fn pipeline(text: &str) -> Result<u64, XrlflowError> {
            let graph = graph::Graph::from_json(text)?;
            let config = core::XrlflowConfig::builder().build()?;
            let _ = config.training_episodes;
            Ok(graph.canonical_hash())
        }
        assert!(pipeline("{}").is_err());
    }
}
