//! # xrlflow
//!
//! Umbrella crate for the X-RLflow reproduction (MLSys 2023): tensor graph
//! superoptimisation with graph reinforcement learning.
//!
//! This crate re-exports every subsystem so examples and downstream users
//! can depend on a single crate:
//!
//! * [`graph`] — the dataflow-graph IR and the model zoo,
//! * [`rewrite`] — TASO-style rewrite rules and candidate generation,
//! * [`cost`] — the per-operator cost model and the end-to-end latency simulator,
//! * [`taso`] — greedy / backtracking / PET baselines,
//! * [`egraph`] — the equality-saturation (Tensat) baseline,
//! * [`tensor`], [`gnn`], [`rl`] — the learning stack,
//! * [`mod@env`] — the Gym-style graph-transformation environment,
//! * [`core`] — the X-RLflow agent, trainer and optimiser,
//! * [`rollout`] — the parallel rollout engine (multi-worker episode
//!   collection with snapshot-based parameter broadcast).
//!
//! ## Quickstart
//!
//! ```
//! use xrlflow::core::{XrlflowConfig, XrlflowSystem};
//! use xrlflow::graph::models::{build_model, ModelKind, ModelScale};
//!
//! let graph = build_model(ModelKind::SqueezeNet, ModelScale::Bench).unwrap();
//! let mut system = XrlflowSystem::new(XrlflowConfig::smoke_test(), 42);
//! let report = system.train_on(&graph, 2);
//! assert!(report.episodes.len() == 2);
//! ```

pub use xrlflow_core as core;
pub use xrlflow_cost as cost;
pub use xrlflow_egraph as egraph;
pub use xrlflow_env as env;
pub use xrlflow_gnn as gnn;
pub use xrlflow_graph as graph;
pub use xrlflow_rewrite as rewrite;
pub use xrlflow_rl as rl;
pub use xrlflow_rollout as rollout;
pub use xrlflow_taso as taso;
pub use xrlflow_tensor as tensor;
